"""EXP-S1 / EXP-S2 — the paper's two evaluation campaigns.

* **GEANT campaign** (EXP-S1): 40 alarms on 1/100-sampled NetFlow with a
  NetReflex-style detector. Paper: useful itemsets in **94%** of cases,
  **28%** of useful cases evidenced additional flows, **26%** found
  flows the detector missed.
* **SWITCH campaign** (EXP-S2): 31 labelled anomalies on unsampled
  NetFlow with the histogram/KL detector and classic (flow-support-only)
  Apriori. Paper: anomalous flows extracted in **31/31** cases with very
  few false-positive itemsets.

Both campaigns draw their anomaly mix from the types the paper names
(port/network scans, TCP SYN DoS/DDoS, point-to-point UDP floods,
reflectors), seeded end to end for exact reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.eval.groundtruth import (
    TruthMatch,
    flow_level_quality,
    report_hits,
)
from repro.eval.harness import CaseResult, run_case, synthesize_alarm
from repro.eval.metrics import PrecisionRecall
from repro.extraction.extractor import ExtractionConfig
from repro.detect.histogram import HistogramKLDetector
from repro.mining.extended import ExtendedAprioriConfig
from repro.synth.anomalies.base import AnomalyInjector
from repro.synth.anomalies.floods import SynFlood, UdpFlood
from repro.synth.anomalies.other import ReflectorAttack, StealthyAnomaly
from repro.synth.anomalies.scans import NetworkScan, PortScan
from repro.synth.background import BackgroundConfig
from repro.synth.scenario import Scenario
from repro.synth.topology import Topology
from repro.taxonomy import AnomalyKind

__all__ = [
    "CampaignCase",
    "CampaignStats",
    "run_geant_campaign",
    "SwitchCase",
    "SwitchStats",
    "run_switch_campaign",
]

#: Anomaly mix of the GEANT campaign (kind, relative weight).
_GEANT_MIX = (
    (AnomalyKind.PORT_SCAN, 0.30),
    (AnomalyKind.NETWORK_SCAN, 0.15),
    (AnomalyKind.SYN_FLOOD, 0.25),
    (AnomalyKind.UDP_FLOOD, 0.20),
    (AnomalyKind.REFLECTOR, 0.10),
)
#: Fraction of alarms that are stealthy / false positives (paper: 6%).
_STEALTHY_FRACTION = 0.06
#: Probability that a case carries a hidden secondary anomaly.
_SECONDARY_PROBABILITY = 0.35


def _make_injector(
    kind: AnomalyKind,
    case_id: str,
    topology: Topology,
    rng: random.Random,
    scale: float,
    target: int | None = None,
) -> AnomalyInjector:
    """Build one sized injector of ``kind``.

    ``target`` pins the victim host — co-injected secondary anomalies
    attack the primary's target, like the simultaneous scan + DDoS of
    the paper's Table 1.
    """
    target_pop = topology.pops[rng.randrange(topology.pop_count)]
    if target is None:
        target = topology.host_address(target_pop, rng.randrange(64))
    else:
        owner = topology.pop_of(target)
        if owner is not None:
            target_pop = topology.pops[owner]
    attacker = topology.random_external_host(rng)
    if kind is AnomalyKind.PORT_SCAN:
        return PortScan(
            case_id,
            attacker,
            target,
            flow_count=int(rng.randint(30_000, 80_000) * scale),
            src_port=rng.randint(1024, 65_535),
        )
    if kind is AnomalyKind.NETWORK_SCAN:
        return NetworkScan(
            case_id,
            attacker,
            target_network=target_pop.prefix.network,
            target_count=int(rng.randint(30_000, 60_000) * scale),
            dst_port=rng.choice([22, 23, 445, 3389, 1433]),
        )
    if kind is AnomalyKind.SYN_FLOOD:
        return SynFlood(
            case_id,
            target,
            dst_port=rng.choice([80, 443, 53]),
            flow_count=int(rng.randint(30_000, 70_000) * scale),
            source_count=rng.randint(64, 1024),
        )
    if kind is AnomalyKind.UDP_FLOOD:
        return UdpFlood(
            case_id,
            attacker,
            target,
            packets_total=int(rng.randint(2_000_000, 8_000_000) * scale),
            flow_count=rng.randint(8, 30),
        )
    if kind is AnomalyKind.REFLECTOR:
        return ReflectorAttack(
            case_id,
            victim=target,
            reflector_count=rng.randint(100, 800),
            flow_count=int(rng.randint(30_000, 60_000) * scale),
            service_port=rng.choice([53, 123, 389]),
        )
    raise EvaluationError(f"no injector for kind {kind!r}")


@dataclass
class CampaignCase:
    """One alarm of the GEANT campaign with its scored outcome."""

    case_id: str
    primary_kind: AnomalyKind
    stealthy: bool
    has_hidden_secondary: bool
    result: CaseResult
    matches: list[TruthMatch]
    quality: PrecisionRecall

    @property
    def useful(self) -> bool:
        """Did extraction return meaningful itemsets?"""
        return self.result.verdict.useful

    @property
    def additional_evidence(self) -> bool:
        """Did extraction evidence *verified* flows beyond the meta-data?

        The paper's 28% counts cases whose extra itemsets describe real
        anomalous flows (the authors verified them manually); itemsets
        hitting no ground truth are noise, not evidence.
        """
        return any(match.hit_beyond_detector for match in self.matches)

    @property
    def hidden_found(self) -> bool:
        """Was a detector-invisible anomaly recovered?"""
        return any(
            match.hit
            for match in self.matches
            if not match.truth.detector_visible
        )

    @property
    def primary_hit(self) -> bool:
        """Was the detector-visible anomaly recovered?"""
        return any(
            match.hit
            for match in self.matches
            if match.truth.detector_visible
        )


@dataclass
class CampaignStats:
    """Aggregate results of the GEANT campaign (paper §1 statistics)."""

    cases: list[CampaignCase] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of alarms analysed."""
        return len(self.cases)

    @property
    def useful_fraction(self) -> float:
        """Share of alarms with useful itemsets (paper: 94%)."""
        if not self.cases:
            return 0.0
        return sum(1 for c in self.cases if c.useful) / self.n

    @property
    def additional_fraction(self) -> float:
        """Share of *useful* cases with additional evidence (paper: 28%)."""
        useful = [c for c in self.cases if c.useful]
        if not useful:
            return 0.0
        return sum(1 for c in useful if c.additional_evidence) / len(useful)

    @property
    def hidden_found_fraction(self) -> float:
        """Share of cases where a hidden anomaly was found (paper: 26%)."""
        if not self.cases:
            return 0.0
        return sum(1 for c in self.cases if c.hidden_found) / self.n

    @property
    def mean_precision(self) -> float:
        """Mean flow-level precision over non-stealthy cases."""
        scored = [c.quality.precision for c in self.cases if not c.stealthy]
        return sum(scored) / len(scored) if scored else 0.0

    @property
    def mean_recall(self) -> float:
        """Mean flow-level recall over non-stealthy cases."""
        scored = [c.quality.recall for c in self.cases if not c.stealthy]
        return sum(scored) / len(scored) if scored else 0.0

    def by_kind(self) -> dict[AnomalyKind, tuple[int, int]]:
        """Per-kind (primary hits, cases) over non-stealthy cases."""
        table: dict[AnomalyKind, list[int]] = {}
        for case in self.cases:
            if case.stealthy:
                continue
            entry = table.setdefault(case.primary_kind, [0, 0])
            entry[1] += 1
            if case.primary_hit:
                entry[0] += 1
        return {kind: (hits, total) for kind, (hits, total) in table.items()}


def run_geant_campaign(
    n_alarms: int = 40,
    seed: int = 2010,
    sampling_rate: int = 100,
    background_fps: float = 25.0,
    anomaly_scale: float = 1.0,
    config: ExtractionConfig | None = None,
) -> CampaignStats:
    """Run the GEANT-style campaign (EXP-S1).

    Every alarm gets its own seeded scenario: background + a primary
    anomaly (detector-visible), possibly a hidden secondary, or — for
    the stealthy fraction — an anomaly with no mineable structure. The
    whole trace is 1/100 packet-sampled before extraction, like the
    GEANT feed.
    """
    if n_alarms < 1:
        raise EvaluationError(f"n_alarms must be >= 1: {n_alarms!r}")
    topology = Topology()
    rng = random.Random(seed)
    kinds = [kind for kind, _ in _GEANT_MIX]
    weights = [weight for _, weight in _GEANT_MIX]
    n_stealthy = round(n_alarms * _STEALTHY_FRACTION)
    stealthy_slots = set(
        rng.sample(range(n_alarms), n_stealthy) if n_stealthy else []
    )

    stats = CampaignStats()
    for index in range(n_alarms):
        case_id = f"geant-{index:03d}"
        case_rng = random.Random(f"{seed}/{case_id}")
        scenario = Scenario(
            topology=topology,
            background=BackgroundConfig(flows_per_second=background_fps),
            bin_count=6,
        )
        stealthy = index in stealthy_slots
        hidden = False
        if stealthy:
            primary_kind = AnomalyKind.STEALTHY
            scenario.add(
                StealthyAnomaly(f"{case_id}-stealthy", flow_count=60), 4
            )
        else:
            primary_kind = case_rng.choices(kinds, weights=weights, k=1)[0]
            target_pop = topology.pops[case_rng.randrange(topology.pop_count)]
            target = topology.host_address(
                target_pop, case_rng.randrange(64)
            )
            scenario.add(
                _make_injector(
                    primary_kind,
                    f"{case_id}-primary",
                    topology,
                    case_rng,
                    anomaly_scale,
                    target=target,
                ),
                4,
            )
            if case_rng.random() < _SECONDARY_PROBABILITY:
                hidden = True
                # Secondaries hit the *same* victim (the paper's Table 1
                # shape) and come from kinds whose flows the primary's
                # dstIP hint pulls into the candidate union.
                secondary_kind = case_rng.choice(
                    [
                        AnomalyKind.PORT_SCAN,
                        AnomalyKind.SYN_FLOOD,
                        AnomalyKind.UDP_FLOOD,
                        AnomalyKind.REFLECTOR,
                    ]
                )
                scenario.add(
                    _make_injector(
                        secondary_kind,
                        f"{case_id}-secondary",
                        topology,
                        case_rng,
                        anomaly_scale,
                        target=target,
                    ),
                    4,
                )
        labeled = scenario.build(
            seed=case_rng.randrange(2**31), sampling_rate=sampling_rate
        )
        for truth in labeled.truths:
            if truth.anomaly_id.endswith("-secondary") or \
                    truth.kind is AnomalyKind.STEALTHY:
                truth.detector_visible = []
        alarm = synthesize_alarm(f"{case_id}-alarm", labeled.truths)
        result = run_case(labeled, alarm, config=config)
        interval = labeled.trace.between(alarm.start, alarm.end)
        scoreable_truths = [
            t
            for t in labeled.truths
            if t.kind is not AnomalyKind.STEALTHY
        ]
        stats.cases.append(
            CampaignCase(
                case_id=case_id,
                primary_kind=primary_kind,
                stealthy=stealthy,
                has_hidden_secondary=hidden,
                result=result,
                matches=report_hits(result.report, scoreable_truths),
                quality=flow_level_quality(
                    result.report, scoreable_truths, interval
                ),
            )
        )
    return stats


# ---------------------------------------------------------------------------
# SWITCH campaign
# ---------------------------------------------------------------------------

#: Anomaly mix of the SWITCH campaign (unsampled, research network).
_SWITCH_MIX = (
    (AnomalyKind.PORT_SCAN, 0.35),
    (AnomalyKind.NETWORK_SCAN, 0.25),
    (AnomalyKind.SYN_FLOOD, 0.30),
    (AnomalyKind.REFLECTOR, 0.10),
)


@dataclass
class SwitchCase:
    """One SWITCH case: real KL detector + flow-support-only Apriori."""

    case_id: str
    kind: AnomalyKind
    detected: bool
    extracted: bool
    false_positive_itemsets: int
    quality: PrecisionRecall | None
    result: CaseResult | None


@dataclass
class SwitchStats:
    """Aggregate results of the SWITCH campaign (paper: 31/31, few FPs)."""

    cases: list[SwitchCase] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Number of analysed cases."""
        return len(self.cases)

    @property
    def detected_count(self) -> int:
        """Cases where the KL detector raised an overlapping alarm."""
        return sum(1 for c in self.cases if c.detected)

    @property
    def extracted_count(self) -> int:
        """Cases where extraction recovered the anomaly (paper: all)."""
        return sum(1 for c in self.cases if c.extracted)

    @property
    def mean_false_positive_itemsets(self) -> float:
        """Mean FP itemsets per detected case (paper: very few)."""
        detected = [c for c in self.cases if c.detected]
        if not detected:
            return 0.0
        return sum(c.false_positive_itemsets for c in detected) / len(
            detected
        )


def _switch_extraction_config() -> ExtractionConfig:
    """Classic Apriori setup of [1]: flow support only."""
    return ExtractionConfig(
        mining=ExtendedAprioriConfig(
            use_packet_support=False,
            reduce="closed",
            target_max_itemsets=40,
        )
    )


def run_switch_campaign(
    n_cases: int = 31,
    seed: int = 2009,
    background_fps: float = 15.0,
    training_bins: int = 8,
    config: ExtractionConfig | None = None,
) -> SwitchStats:
    """Run the SWITCH-style campaign (EXP-S2) with the real KL detector.

    Each case: train the histogram/KL detector on the scenario's clean
    leading bins, detect over the anomalous tail, extract with
    flow-support-only Apriori, and score against ground truth.
    """
    if n_cases < 1:
        raise EvaluationError(f"n_cases must be >= 1: {n_cases!r}")
    topology = Topology()
    rng = random.Random(seed)
    kinds = [kind for kind, _ in _SWITCH_MIX]
    weights = [weight for _, weight in _SWITCH_MIX]
    config = config or _switch_extraction_config()
    anomaly_bin = training_bins + 2

    stats = SwitchStats()
    for index in range(n_cases):
        case_id = f"switch-{index:03d}"
        case_rng = random.Random(f"{seed}/{case_id}")
        kind = case_rng.choices(kinds, weights=weights, k=1)[0]
        scenario = Scenario(
            topology=topology,
            background=BackgroundConfig(flows_per_second=background_fps),
            bin_count=training_bins + 4,
        )
        scenario.add(
            _make_injector(
                kind, f"{case_id}-anomaly", topology, case_rng, scale=0.1
            ),
            anomaly_bin,
        )
        labeled = scenario.build(seed=case_rng.randrange(2**31))
        trace = labeled.trace
        train_end = trace.origin + training_bins * trace.bin_seconds
        training = trace.where(lambda f: f.start < train_end)
        tail = trace.where(lambda f: f.start >= train_end)

        detector = HistogramKLDetector()
        detector.train(training)
        alarms = detector.detect(tail)
        truth = labeled.truths[0]
        overlapping = [
            a for a in alarms if a.start < truth.end and a.end > truth.start
        ]
        if not overlapping:
            stats.cases.append(
                SwitchCase(
                    case_id=case_id,
                    kind=kind,
                    detected=False,
                    extracted=False,
                    false_positive_itemsets=0,
                    quality=None,
                    result=None,
                )
            )
            continue
        alarm = max(overlapping, key=lambda a: a.score)
        result = run_case(labeled, alarm, config=config)
        matches = report_hits(result.report, labeled.truths)
        extracted = any(match.hit for match in matches)
        hitting = {
            id(e) for match in matches for e in match.hitting_itemsets
        }
        false_positives = sum(
            1 for e in result.report.itemsets if id(e) not in hitting
        )
        interval = trace.between(alarm.start, alarm.end)
        stats.cases.append(
            SwitchCase(
                case_id=case_id,
                kind=kind,
                detected=True,
                extracted=extracted,
                false_positive_itemsets=false_positives,
                quality=flow_level_quality(
                    result.report, labeled.truths, interval
                ),
                result=result,
            )
        )
    return stats
