"""Matching extraction output against injected ground truth.

The paper's authors validated extraction manually ("leveraged DANTE's
experience in manual anomaly investigation"); with synthetic traces the
same judgement is mechanical: an extracted itemset *hits* an injected
anomaly when it stands in a generalisation/refinement relation to one
of the anomaly's signatures, and flow-level precision/recall is computed
by marking each interval flow as anomalous or not via the signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.extraction.extractor import ExtractedItemset, ExtractionReport
from repro.flows.record import FlowRecord
from repro.mining.items import Itemset, itemset_from_signature
from repro.synth.anomalies.base import GroundTruth, Signature

__all__ = [
    "itemset_hits_signature",
    "itemset_hits_truth",
    "report_hits",
    "flow_level_quality",
    "TruthMatch",
]


def itemset_hits_signature(itemset: Itemset, signature: Signature) -> bool:
    """True when ``itemset`` describes the same phenomenon as ``signature``.

    Hit ⇔ the itemset is a generalisation (subset) or a refinement
    (superset) of the signature's items. Mere compatibility (no shared
    feature) does not count — {proto=TCP} must not "hit" every TCP
    anomaly, so generalisations must keep at least two signature items
    (or all of them for single-item signatures).
    """
    signature_itemset = itemset_from_signature(signature.items)
    if signature_itemset.issubset(itemset):
        return True
    if itemset.issubset(signature_itemset):
        required = min(2, len(signature_itemset))
        shared = sum(
            1 for item in itemset.items if item in signature_itemset
        )
        return shared >= required
    return False


def itemset_hits_truth(itemset: Itemset, truth: GroundTruth) -> bool:
    """True when the itemset hits any signature of the anomaly."""
    return any(
        itemset_hits_signature(itemset, signature)
        for signature in truth.signatures
    )


@dataclass
class TruthMatch:
    """How one injected anomaly fared in one extraction report."""

    truth: GroundTruth
    hit: bool
    hitting_itemsets: list[ExtractedItemset]
    #: Hit through an itemset the detector's meta-data did not flag —
    #: the paper's "found flows the detector missed" capability.
    hit_beyond_detector: bool


def report_hits(
    report: ExtractionReport, truths: list[GroundTruth]
) -> list[TruthMatch]:
    """Match every injected anomaly against a report's itemsets."""
    matches = []
    for truth in truths:
        hitting = [
            extracted
            for extracted in report.itemsets
            if itemset_hits_truth(extracted.itemset, truth)
        ]
        matches.append(
            TruthMatch(
                truth=truth,
                hit=bool(hitting),
                hitting_itemsets=hitting,
                hit_beyond_detector=any(
                    not extracted.confirms_detector for extracted in hitting
                ),
            )
        )
    return matches


def flow_level_quality(
    report: ExtractionReport,
    truths: list[GroundTruth],
    interval_flows: list[FlowRecord],
) -> PrecisionRecall:
    """Flow-level precision/recall of a report's extracted flow set.

    The extracted set is the union of flows matched by the reported
    itemsets; the truth set is the union of flows belonging to any
    injected anomaly. Both are taken over ``interval_flows``.
    """
    truth_indices = {
        index
        for index, flow in enumerate(interval_flows)
        if any(truth.matches(flow) for truth in truths)
    }
    extracted_indices = set()
    for index, flow in enumerate(interval_flows):
        for extracted in report.itemsets:
            if extracted.itemset.matches(flow):
                extracted_indices.add(index)
                break
    return precision_recall(extracted_indices, truth_indices)
