"""Evaluation harness: ground-truth matching, metrics and experiments.

One module per experiment family (see DESIGN.md §4):

* :mod:`repro.eval.table1` — EXP-T1, the paper's Table 1;
* :mod:`repro.eval.campaigns` — EXP-S1 (GEANT, 40 alarms) and EXP-S2
  (SWITCH, 31 cases);
* :mod:`repro.eval.ablations` — EXP-S3/S4 and EXP-A2/A3.
"""

from repro.eval.ablations import (
    CandidateRow,
    DualSupportRow,
    SamplingRow,
    SelfTuningRow,
    run_candidate_ablation,
    run_dual_support_ablation,
    run_sampling_ablation,
    run_selftuning_ablation,
)
from repro.eval.campaigns import (
    CampaignCase,
    CampaignStats,
    SwitchCase,
    SwitchStats,
    run_geant_campaign,
    run_switch_campaign,
)
from repro.eval.groundtruth import (
    TruthMatch,
    flow_level_quality,
    itemset_hits_signature,
    itemset_hits_truth,
    report_hits,
)
from repro.eval.harness import CaseResult, run_case, synthesize_alarm
from repro.eval.metrics import PrecisionRecall, precision_recall
from repro.eval.table1 import (
    PAPER_TABLE1_FLOWS,
    Table1Result,
    Table1Row,
    run_table1,
)

__all__ = [
    "CandidateRow",
    "DualSupportRow",
    "SamplingRow",
    "SelfTuningRow",
    "run_candidate_ablation",
    "run_dual_support_ablation",
    "run_sampling_ablation",
    "run_selftuning_ablation",
    "CampaignCase",
    "CampaignStats",
    "SwitchCase",
    "SwitchStats",
    "run_geant_campaign",
    "run_switch_campaign",
    "TruthMatch",
    "flow_level_quality",
    "itemset_hits_signature",
    "itemset_hits_truth",
    "report_hits",
    "CaseResult",
    "run_case",
    "synthesize_alarm",
    "PrecisionRecall",
    "precision_recall",
    "PAPER_TABLE1_FLOWS",
    "Table1Result",
    "Table1Row",
    "run_table1",
]
