"""EXP-S3/S4 and EXP-A* — ablations of the design choices.

* **Dual support** (EXP-S3): point-to-point UDP floods are invisible to
  flow-support-only Apriori and extracted once packet support is added —
  the paper's motivation for the extension.
* **Self-tuning** (EXP-S4): fixed support thresholds either drown the
  operator in itemsets or return none as anomaly intensity varies; the
  self-tuning search lands in the target band across the whole sweep.
* **Sampling** (EXP-A2): extraction recall as packet sampling thins the
  trace from 1/1 (SWITCH) to 1/1000 — why the packet measure matters
  even more on sampled feeds.
* **Candidate pre-filtering** (EXP-A3): mining the meta-data union vs
  the whole interval — precision and runtime impact.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.eval.groundtruth import (
    flow_level_quality,
    itemset_hits_truth,
)
from repro.eval.harness import run_case, synthesize_alarm
from repro.extraction.extractor import ExtractionConfig
from repro.mining.extended import ExtendedAprioriConfig
from repro.synth.anomalies.floods import SynFlood, UdpFlood
from repro.synth.anomalies.scans import PortScan
from repro.synth.background import BackgroundConfig
from repro.synth.scenario import Scenario
from repro.synth.topology import Topology

__all__ = [
    "DualSupportRow",
    "run_dual_support_ablation",
    "SelfTuningRow",
    "run_selftuning_ablation",
    "SamplingRow",
    "run_sampling_ablation",
    "CandidateRow",
    "run_candidate_ablation",
]


def _flood_scenario(
    packets_total: int,
    flow_count: int,
    seed: int,
    topology: Topology,
    background_fps: float,
) -> tuple:
    """One UDP-flood scenario plus its labelled build."""
    rng = random.Random(seed)
    target = topology.host_address(
        topology.pops[rng.randrange(topology.pop_count)], rng.randrange(64)
    )
    source = topology.random_external_host(rng)
    scenario = Scenario(
        topology=topology,
        background=BackgroundConfig(flows_per_second=background_fps),
        bin_count=6,
    )
    scenario.add(
        UdpFlood(
            "flood",
            source,
            target,
            packets_total=packets_total,
            flow_count=flow_count,
        ),
        4,
    )
    return scenario.build(seed=seed)


@dataclass
class DualSupportRow:
    """One flood intensity: did each support mode extract it?"""

    packets_total: int
    flow_count: int
    flow_only_hit: bool
    dual_hit: bool
    flow_only_itemsets: int
    dual_itemsets: int


def run_dual_support_ablation(
    packet_sweep: tuple[int, ...] = (
        200_000,
        500_000,
        1_000_000,
        2_000_000,
        5_000_000,
    ),
    flow_count: int = 12,
    seed: int = 31,
    background_fps: float = 25.0,
) -> list[DualSupportRow]:
    """EXP-S3: flow-only vs dual-support extraction on UDP floods."""
    topology = Topology()
    flow_only = ExtractionConfig(
        mining=ExtendedAprioriConfig(
            use_packet_support=False, reduce="closed", target_max_itemsets=40
        )
    )
    dual = ExtractionConfig()
    rows = []
    for index, packets_total in enumerate(packet_sweep):
        labeled = _flood_scenario(
            packets_total, flow_count, seed + index, topology, background_fps
        )
        truth = labeled.truths[0]
        alarm = synthesize_alarm(f"flood-{index}", [truth])
        results = {}
        for name, config in (("flow", flow_only), ("dual", dual)):
            result = run_case(labeled, alarm, config=config)
            hit = any(
                itemset_hits_truth(e.itemset, truth)
                for e in result.report.itemsets
            )
            results[name] = (hit, len(result.report.itemsets))
        rows.append(
            DualSupportRow(
                packets_total=packets_total,
                flow_count=flow_count,
                flow_only_hit=results["flow"][0],
                dual_hit=results["dual"][0],
                flow_only_itemsets=results["flow"][1],
                dual_itemsets=results["dual"][1],
            )
        )
    return rows


@dataclass
class SelfTuningRow:
    """One anomaly intensity: itemset counts per threshold policy."""

    scan_flows: int
    #: mapping from fixed flow-share threshold to reduced-itemset count
    fixed_counts: dict[float, int] = field(default_factory=dict)
    tuned_count: int = 0
    tuned_iterations: int = 0
    tuned_in_band: bool = False


def run_selftuning_ablation(
    intensity_sweep: tuple[int, ...] = (200, 1_000, 5_000, 25_000, 100_000),
    fixed_shares: tuple[float, ...] = (0.01, 0.05, 0.20),
    seed: int = 17,
    background_fps: float = 25.0,
) -> list[SelfTuningRow]:
    """EXP-S4: fixed minimum support vs the self-tuning search.

    For each scan intensity, mine the alarm bin's candidates with fixed
    relative thresholds and with self-tuning, and count the reduced
    itemsets each returns. Fixed thresholds leave the band quickly;
    self-tuning stays inside it.
    """
    from repro.mining.extended import ExtendedApriori
    from repro.mining.transactions import TransactionSet

    topology = Topology()
    rows = []
    for index, scan_flows in enumerate(intensity_sweep):
        rng = random.Random(seed + index)
        target = topology.host_address(topology.pops[3], 7)
        scenario = Scenario(
            topology=topology,
            background=BackgroundConfig(flows_per_second=background_fps),
            bin_count=6,
        )
        scenario.add(
            PortScan(
                "scan",
                topology.random_external_host(rng),
                target,
                flow_count=scan_flows,
            ),
            4,
        )
        labeled = scenario.build(seed=seed + index)
        start, end = scenario.bin_interval(4)
        candidates = labeled.trace.between(start, end)
        transactions = TransactionSet.from_flows(candidates)

        config = ExtendedAprioriConfig(reduce="closed")
        miner = ExtendedApriori(config)
        row = SelfTuningRow(scan_flows=scan_flows)
        for share in fixed_shares:
            outcome = miner.mine_fixed(transactions, share, share)
            row.fixed_counts[share] = len(outcome.itemsets)
        tuned = miner.mine(transactions)
        row.tuned_count = len(tuned.itemsets)
        row.tuned_iterations = tuned.iterations
        row.tuned_in_band = (
            config.target_min_itemsets
            <= row.tuned_count
            <= config.target_max_itemsets
        )
        rows.append(row)
    return rows


@dataclass
class SamplingRow:
    """One sampling rate: extraction quality on the same scenario."""

    sampling_rate: int
    hit_scan: bool
    hit_flood: bool
    precision: float
    recall: float
    candidate_flows: int


def run_sampling_ablation(
    rates: tuple[int, ...] = (1, 10, 100, 1000),
    seed: int = 23,
    background_fps: float = 25.0,
) -> list[SamplingRow]:
    """EXP-A2: the same scan + flood scenario under coarser sampling."""
    topology = Topology()
    rng = random.Random(seed)
    target = topology.host_address(topology.pops[5], 9)
    scanner = topology.random_external_host(rng)
    flooder = topology.random_external_host(rng)
    scenario = Scenario(
        topology=topology,
        background=BackgroundConfig(flows_per_second=background_fps),
        bin_count=6,
    )
    scenario.add(
        PortScan("scan", scanner, target, flow_count=40_000), 4
    )
    scenario.add(
        UdpFlood("flood", flooder, target, packets_total=4_000_000), 4
    )
    rows = []
    for rate in rates:
        labeled = scenario.build(seed=seed, sampling_rate=rate)
        alarm = synthesize_alarm("sampling", labeled.truths)
        result = run_case(labeled, alarm)
        scan_truth = labeled.truth_by_id("scan")
        flood_truth = labeled.truth_by_id("flood")
        interval = labeled.trace.between(alarm.start, alarm.end)
        quality = flow_level_quality(
            result.report, labeled.truths, interval
        )
        rows.append(
            SamplingRow(
                sampling_rate=rate,
                hit_scan=any(
                    itemset_hits_truth(e.itemset, scan_truth)
                    for e in result.report.itemsets
                ),
                hit_flood=any(
                    itemset_hits_truth(e.itemset, flood_truth)
                    for e in result.report.itemsets
                ),
                precision=quality.precision,
                recall=quality.recall,
                candidate_flows=len(result.report.candidates.flows),
            )
        )
    return rows


@dataclass
class CandidateRow:
    """Meta-data pre-filter vs whole-interval mining."""

    mode: str
    candidate_flows: int
    itemsets: int
    precision: float
    recall: float
    seconds: float


def run_candidate_ablation(
    seed: int = 41,
    background_fps: float = 60.0,
    scan_flows: int = 30_000,
) -> list[CandidateRow]:
    """EXP-A3: effect of the meta-data candidate pre-filter."""
    topology = Topology()
    rng = random.Random(seed)
    target = topology.host_address(topology.pops[7], 11)
    scenario = Scenario(
        topology=topology,
        background=BackgroundConfig(flows_per_second=background_fps),
        bin_count=6,
    )
    scenario.add(
        PortScan(
            "scan", topology.random_external_host(rng), target,
            flow_count=scan_flows,
        ),
        4,
    )
    scenario.add(
        SynFlood("ddos", target, 80, flow_count=scan_flows // 8), 4
    )
    labeled = scenario.build(seed=seed)
    alarm = synthesize_alarm("cand", labeled.truths)
    interval = labeled.trace.between(alarm.start, alarm.end)
    rows = []
    for mode, use_metadata in (("union", True), ("interval", False)):
        config = ExtractionConfig(use_metadata=use_metadata)
        started = time.perf_counter()
        result = run_case(labeled, alarm, config=config)
        elapsed = time.perf_counter() - started
        quality = flow_level_quality(
            result.report, labeled.truths, interval
        )
        rows.append(
            CandidateRow(
                mode=mode,
                candidate_flows=len(result.report.candidates.flows),
                itemsets=len(result.report.itemsets),
                precision=quality.precision,
                recall=quality.recall,
                seconds=elapsed,
            )
        )
    return rows
