"""Shared experiment plumbing: simulated alarms and one-shot runs.

The campaign experiments need hundreds of alarm→extraction runs. Running
the PCA detector for each would dominate runtime without adding
information (the detectors have their own tests); instead, alarms are
*synthesised* from ground truth the way NetReflex would have reported
them — fine-grained hints from the anomaly's ``detector_visible``
signatures only, so hidden co-injected anomalies stay hidden, exactly
like the paper's "detector missed part of the anomaly" cases. A
``detector`` mode that runs the real detectors end-to-end remains
available wherever full fidelity matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detect.base import Alarm, MetadataItem
from repro.extraction.extractor import (
    AnomalyExtractor,
    ExtractionConfig,
    ExtractionReport,
)
from repro.extraction.validate import ValidationVerdict, validate_report
from repro.synth.anomalies.base import GroundTruth
from repro.synth.scenario import LabeledTrace

__all__ = ["synthesize_alarm", "CaseResult", "run_case"]


def synthesize_alarm(
    alarm_id: str,
    truths: list[GroundTruth],
    detector_name: str = "netreflex-sim",
    score: float = 10.0,
) -> Alarm:
    """Build the alarm a NetReflex-like detector would raise.

    The interval is the union of the anomalies' windows; the meta-data
    hints come only from each anomaly's ``detector_visible`` signatures
    (one hint per signature item, first-listed signature strongest).
    Protocol items are never hinted — real detectors implicate IPs and
    ports, and a ``proto`` hint would make the candidate union swallow
    the entire protocol's traffic. Anomalies whose ``detector_visible``
    is empty contribute nothing — the alarm may end up with no hints at
    all (stealthy / false-positive alarms), which the extractor must
    handle.
    """
    from repro.flows.record import FlowFeature

    if not truths:
        raise ValueError("at least one ground truth is required")
    start = min(truth.start for truth in truths)
    end = max(truth.end for truth in truths)
    metadata: list[MetadataItem] = []
    seen: set[tuple[object, int]] = set()
    weight = float(len(truths) + 1)
    label = truths[0].kind.value
    for truth in truths:
        for signature in truth.detector_visible:
            for feature, value in signature.items.items():
                if feature is FlowFeature.PROTO:
                    continue
                key = (feature, value)
                if key in seen:
                    continue
                seen.add(key)
                metadata.append(
                    MetadataItem(feature=feature, value=value, weight=weight)
                )
        weight -= 1.0
    return Alarm(
        alarm_id=alarm_id,
        detector=detector_name,
        start=start,
        end=end,
        score=score,
        label=label,
        metadata=metadata,
    )


@dataclass
class CaseResult:
    """Everything one experiment case produced."""

    alarm: Alarm
    report: ExtractionReport
    verdict: ValidationVerdict
    labeled: LabeledTrace


def run_case(
    labeled: LabeledTrace,
    alarm: Alarm,
    config: ExtractionConfig | None = None,
    baseline_bins: int = 3,
) -> CaseResult:
    """Extract and validate one alarm against a labelled trace.

    The interval and baseline windows are cut directly from the trace
    (no store round-trip — campaigns build hundreds of cases).
    """
    trace = labeled.trace
    interval = trace.between(alarm.start, alarm.end)
    baseline_start = alarm.start - baseline_bins * trace.bin_seconds
    baseline = (
        trace.between(baseline_start, alarm.start)
        if baseline_bins > 0
        else []
    )
    extractor = AnomalyExtractor(config)
    report = extractor.extract(alarm, interval, baseline)
    verdict = validate_report(report)
    return CaseResult(
        alarm=alarm, report=report, verdict=verdict, labeled=labeled
    )
