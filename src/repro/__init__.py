"""repro — anomaly extraction via frequent itemset mining.

A full reproduction of *"Automating Root-Cause Analysis of Network
Anomalies using Frequent Itemset Mining"* (Paredes-Oliva et al.,
SIGCOMM 2010) and the technique papers behind it: an open-source
anomaly-extraction system that takes any detector's alarm and returns a
ranked, classified, Table-1-style summary of the flows behind it.

Subpackages
-----------
``repro.flows``
    NetFlow substrate: records, v5 codec, sampling, nfdump-style store
    and filter language.
``repro.synth``
    Synthetic labelled traces: GEANT-like topology, background traffic,
    anomaly injectors.
``repro.detect``
    Histogram/KL detector (Kind et al.) and a PCA/entropy NetReflex
    stand-in (Lakhina et al.).
``repro.mining``
    Apriori, FP-Growth and Eclat from scratch, dual flow/packet support,
    the self-tuning extended Apriori.
``repro.extraction``
    The core contribution: candidates → mining → filtering → ranking →
    classification → validation.
``repro.system``
    Figure 1 assembled: alarm DB, flow backend, operator console,
    end-to-end pipeline.
``repro.archive``
    Persistent mmap'd columnar flow archive: time/shard-partitioned
    files, zone-map-pruned queries, compaction — triage that survives
    process restarts.
``repro.eval``
    Experiment harness regenerating every table, figure and in-text
    statistic of the paper.

Quickstart
----------
>>> from repro.synth import Scenario, PortScan, Topology
>>> from repro.extraction import AnomalyExtractor
>>> from repro.eval import synthesize_alarm
>>> topo = Topology()
>>> scenario = Scenario(topology=topo, bin_count=4)
>>> target = topo.host_address(topo.pops[0], 1)
>>> _ = scenario.add(PortScan("scan", 0xC0A80001, target, 2000), 2)
>>> labeled = scenario.build(seed=1)
>>> alarm = synthesize_alarm("demo", labeled.truths)
>>> report = AnomalyExtractor().extract(
...     alarm, labeled.trace.between(alarm.start, alarm.end))
>>> report.useful
True
"""

from repro.errors import ReproError
from repro.taxonomy import AnomalyKind

__version__ = "1.0.0"

__all__ = ["ReproError", "AnomalyKind", "__version__"]
