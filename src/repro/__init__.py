"""repro — anomaly extraction via frequent itemset mining.

A full reproduction of *"Automating Root-Cause Analysis of Network
Anomalies using Frequent Itemset Mining"* (Paredes-Oliva et al.,
SIGCOMM 2010) and the technique papers behind it, grown into a
columnar, sharded, streaming, archive-backed deployment system.

Public API
----------
The stable, supported surface is :mod:`repro.api` plus the core data
types re-exported here (``__all__`` is the contract — the API-surface
snapshot test fails when it drifts). A session is five orthogonal
specs — source, detector, mining, execution, sink — composed with a
fluent builder or loaded from TOML, and every execution mode (batch,
sharded batch, windowed stream, sharded stream, archive-resume) runs
through the same ``Session.run()``::

    import repro

    result = (
        repro.session()
        .source("rpv5", path="trace.rpv5")
        .detect("netreflex", train_bins=8)
        .stream(workers=4, triage=True)
        .archive("spool/")
        .run()
    )

    result = repro.Session.from_config("config.toml").run()

API stability
-------------
* :mod:`repro.api` names and the types in ``__all__`` below follow
  semantic versioning from ``__version__``.
* Subsystem modules (``repro.flows``, ``repro.detect``,
  ``repro.mining``, ``repro.extraction``, ``repro.stream``,
  ``repro.parallel``, ``repro.archive``, ``repro.system``,
  ``repro.synth``, ``repro.eval``) are importable and documented but
  are *implementation* surface; prefer the facade.
* The legacy entry points (``ExtractionSystem``, ``StreamEngine``,
  ``ShardedStreamEngine``, ``FlowBackend.from_archive``) remain
  supported compatibility shims — the facade composes them and the
  equivalence suite holds ``Session`` byte-identical to each — but new
  capabilities land as specs/registry entries, not as new entry
  points.

Subpackages
-----------
``repro.api``
    The declarative session facade: specs, registries, builder, TOML.
``repro.flows``
    NetFlow substrate: columnar tables, v5 codec, sampling, filters.
``repro.synth``
    Synthetic labelled traces: topology, background, anomaly presets.
``repro.detect``
    Histogram/KL and PCA/entropy detectors.
``repro.mining``
    Apriori, FP-Growth, Eclat; dual support; self-tuning envelope.
``repro.extraction``
    Candidates → mining → filtering → ranking → classification.
``repro.system``
    Alarm DB, flow backend, console, the Figure-1 pipeline.
``repro.stream`` / ``repro.parallel`` / ``repro.archive``
    Online windows, sharded execution, persistent mmap'd archive.
``repro.eval``
    Harness regenerating the paper's tables and figures.
"""

from repro.api import (
    DetectorSpec,
    ExecutionSpec,
    MiningSpec,
    RunResult,
    Session,
    SessionBuilder,
    SessionSpec,
    SinkSpec,
    SourceSpec,
    session,
)
from repro.detect.base import Alarm, Detector, MetadataItem
from repro.errors import RegistryError, ReproError, SpecError
from repro.extraction.extractor import ExtractionReport
from repro.flows.record import FlowFeature, FlowRecord
from repro.flows.table import FlowTable
from repro.flows.trace import FlowTrace
from repro.system.pipeline import TriageResult
from repro.taxonomy import AnomalyKind

__version__ = "0.3.0"

__all__ = [
    # facade
    "session",
    "Session",
    "SessionBuilder",
    "RunResult",
    "SourceSpec",
    "DetectorSpec",
    "MiningSpec",
    "ExecutionSpec",
    "SinkSpec",
    "SessionSpec",
    # core data types
    "Alarm",
    "MetadataItem",
    "Detector",
    "FlowRecord",
    "FlowFeature",
    "FlowTable",
    "FlowTrace",
    "ExtractionReport",
    "TriageResult",
    "AnomalyKind",
    # errors
    "ReproError",
    "SpecError",
    "RegistryError",
    # metadata
    "__version__",
]
