"""The sharded stream engine: per-shard accumulation, merge on close.

:class:`ShardedStreamEngine` is the scale-out variant of
:class:`~repro.stream.runtime.StreamEngine`. Ingest stays cheap and
single-threaded — the window ring routes chunks by time exactly as
before — but every routed sub-chunk is *bucketed* by the partition
hash instead of being folded into detector state immediately. The
expensive part (per-feature value histograms, `np.unique` over every
column) runs **per shard** through a
:class:`~repro.parallel.executor.ShardExecutor`, and the per-shard
:class:`~repro.stream.incremental.WindowAccumulator` partials are
merged in the parent before scoring. Fan-out happens whenever a
window's buffer reaches ``flush_rows`` and once more when the
watermark seals it, so — unlike naive buffer-to-close — raw rows held
per open window stay bounded while the heavy accumulation still runs
in batches big enough to be worth shipping.

Equivalence with the unsharded engine is inherited from the
incremental-state contract (ARCHITECTURE.md): accumulators hold
integer counters, merging is counter addition (associative and
commutative, so any shard split equals one-pass accumulation), float
quantities are derived at evaluation time from value-sorted counts,
and scoring goes through the same ``evaluate_window`` entry points —
so alarms, dedup decisions and triage results are identical for any
shard count. Alarm insertion, re-fire dedup, live triage and stats
are reused verbatim from the base engine; triage itself mines through
the sharded extractor when ``workers > 1``.

This is a supported *compatibility entry point*: the declarative
facade (:mod:`repro.api`) selects it whenever a ``stream`` spec says
``workers > 1`` — callers never need to pick the class themselves.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StoreError
from repro.flows.table import FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS
from repro.parallel.executor import ShardExecutor
from repro.parallel.partition import PartitionSpec, shard_ids
from repro.stream.incremental import StreamingDetector, WindowAccumulator
from repro.stream.runtime import StreamEngine, WindowResult
from repro.stream.window import ClosedWindow
from repro.system.alarmdb import AlarmDatabase
from repro.system.config import SystemConfig

__all__ = ["ShardedStreamEngine"]


def _accumulate_task(
    table: FlowTable, layouts: tuple[tuple, ...]
) -> list[WindowAccumulator]:
    """Worker task: one shard's window partial per accumulator layout.

    ``layouts`` lists distinct ``(features, weightings)`` pairs needed
    by the engine's detectors; each yields one accumulator over the
    shard's rows.
    """
    partials = []
    for features, weightings in layouts:
        accumulator = WindowAccumulator(
            features=features, weightings=weightings
        )
        accumulator.update(table)
        partials.append(accumulator)
    return partials


class ShardedStreamEngine(StreamEngine):
    """Stream engine whose window accumulation fans out over shards."""

    def __init__(
        self,
        detectors: Iterable[StreamingDetector],
        workers: int = 1,
        partition: PartitionSpec | None = None,
        executor: ShardExecutor | None = None,
        flush_rows: int = 262_144,
        window_seconds: float = DEFAULT_BIN_SECONDS,
        origin: float | None = None,
        lateness_seconds: float | None = 0.0,
        retain_windows: int = 16,
        alarmdb: AlarmDatabase | None = None,
        dedup_window: float | None = None,
        triage: bool = False,
        config: SystemConfig | None = None,
        on_window=None,
        archive=None,
    ) -> None:
        if executor is not None:
            # A caller handing us a pool means that much fan-out: an
            # explicit ShardExecutor(4) must not silently run 1 shard.
            workers = max(workers, executor.workers)
        if partition is None:
            partition = PartitionSpec(shards=max(workers, 1))
        self._owns_executor = executor is None
        if executor is None:
            executor = ShardExecutor(workers)
        self.partition = partition
        self.executor = executor
        super().__init__(
            detectors,
            window_seconds=window_seconds,
            origin=origin,
            lateness_seconds=lateness_seconds,
            retain_windows=retain_windows,
            alarmdb=alarmdb,
            dedup_window=dedup_window,
            triage=triage,
            config=config,
            on_window=on_window,
            workers=workers,
            executor=executor,
            archive=archive,
        )
        if flush_rows < 1:
            raise StoreError(
                f"flush_rows must be >= 1: {flush_rows!r}"
            )
        self.flush_rows = flush_rows
        # Distinct accumulator layouts across detectors; detectors
        # sharing a layout share the merged window partial.
        self._layouts: list[tuple] = []
        self._layout_of: list[int] = []
        for detector in self.detectors:
            template = detector.make_accumulator()
            layout = (template.features, template.weightings)
            if layout not in self._layouts:
                self._layouts.append(layout)
            self._layout_of.append(self._layouts.index(layout))
        #: Open-window shard buckets: window index -> per-shard chunk
        #: lists. Bounded: once a window holds ``flush_rows`` buffered
        #: rows the buckets fan out into :attr:`_partials` and are
        #: dropped, so raw rows never accumulate past the threshold.
        self._buckets: dict[int, list[list[FlowTable]]] = {}
        self._buffered: dict[int, int] = {}
        #: Merged per-layout accumulators of already-flushed rows.
        self._partials: dict[int, list[WindowAccumulator]] = {}

    def close(self) -> None:
        """Release worker processes and buffered window state."""
        super().close()
        self._buckets.clear()
        self._buffered.clear()
        self._partials.clear()
        if self._owns_executor:
            self.executor.close()

    # -- ingest ------------------------------------------------------------

    def _observe(self, index: int, rows: FlowTable) -> None:
        """Bucket a routed sub-chunk by shard; fan out when full."""
        buckets = self._buckets.get(index)
        if buckets is None:
            buckets = self._buckets[index] = [
                [] for _ in range(self.partition.shards)
            ]
        if self.partition.shards == 1:
            buckets[0].append(rows)
        else:
            ids = shard_ids(rows, self.partition)
            for shard in range(self.partition.shards):
                selected = rows.select(ids == shard)
                if len(selected):
                    buckets[shard].append(selected)
        buffered = self._buffered.get(index, 0) + len(rows)
        if buffered >= self.flush_rows:
            self._flush(index)
        else:
            self._buffered[index] = buffered

    def _flush(self, index: int) -> None:
        """Fan one window's buffered rows out and merge the partials.

        Keeps ingest memory bounded: raw rows of an open window never
        exceed ``flush_rows`` — merged accumulators carry the rest,
        and merging across flushes is exact (integer counters).
        """
        buckets = self._buckets.pop(index, None)
        self._buffered.pop(index, None)
        if buckets is None:
            return
        shards = [
            FlowTable.concat(chunks) for chunks in buckets if chunks
        ]
        if not shards:
            return
        merged = self._partials.get(index)
        if merged is None:
            merged = self._partials[index] = [
                WindowAccumulator(features=features, weightings=weightings)
                for features, weightings in self._layouts
            ]
        layouts = tuple(self._layouts)
        partial_lists = self.executor.map_tables(
            _accumulate_task, shards, [(layouts,)] * len(shards)
        )
        for partials in partial_lists:
            for target, partial in zip(merged, partials):
                target.merge(partial)

    # -- window close ------------------------------------------------------

    def _seal(self, window: ClosedWindow) -> WindowResult:
        self._flush(window.index)
        merged = self._partials.pop(window.index, None)
        if merged is None:
            merged = [
                WindowAccumulator(features=features, weightings=weightings)
                for features, weightings in self._layouts
            ]
        # Seed the merged state so the adapters' close() pops it and
        # evaluates through the shared batch entry points.
        for detector, layout_index in zip(
            self.detectors, self._layout_of
        ):
            detector.seed_state(window.index, merged[layout_index])
        return super()._seal(window)
