"""The sharded stream engine: per-shard accumulation, merge on close.

:class:`ShardedStreamEngine` is the scale-out variant of
:class:`~repro.stream.runtime.StreamEngine`. Ingest stays cheap and
single-threaded — the window ring routes chunks by time exactly as
before — but every routed sub-chunk is *buffered* instead of being
folded into detector state immediately. The expensive part
(per-feature value histograms, `np.unique` over every column) runs
**per shard** through a
:class:`~repro.parallel.executor.ShardExecutor` — shards travel as
shared-memory descriptors when the executor's IPC mode allows, so no
row bytes cross the pool — and the per-shard array-form partials
(:func:`~repro.stream.incremental.accumulate_payload`) are merged in
the parent at window close. Fan-out happens whenever a
window's buffer reaches ``flush_rows`` and once more when the
watermark seals it, so — unlike naive buffer-to-close — raw rows held
per open window stay bounded while the heavy accumulation still runs
in batches big enough to be worth shipping.

Equivalence with the unsharded engine is inherited from the
incremental-state contract (ARCHITECTURE.md): accumulators hold
integer counters, merging is counter addition (associative and
commutative, so any shard split equals one-pass accumulation), float
quantities are derived at evaluation time from value-sorted counts,
and scoring goes through the same ``evaluate_window`` entry points —
so alarms, dedup decisions and triage results are identical for any
shard count. Alarm insertion, re-fire dedup, live triage and stats
are reused verbatim from the base engine; triage itself mines through
the sharded extractor when ``workers > 1``.

This is a supported *compatibility entry point*: the declarative
facade (:mod:`repro.api`) selects it whenever a ``stream`` spec says
``workers > 1`` — callers never need to pick the class themselves.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import StoreError
from repro.flows.table import FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS
from repro.obs import events as obs_events, metrics as obs_metrics
from repro.parallel.executor import ShardExecutor
from repro.parallel.partition import PartitionSpec
from repro.stream.incremental import (
    StreamingDetector,
    accumulate_payload,
    merge_payloads,
)
from repro.stream.runtime import StreamEngine, WindowResult
from repro.stream.window import ClosedWindow
from repro.system.alarmdb import AlarmDatabase
from repro.system.config import SystemConfig

__all__ = ["ShardedStreamEngine"]

_FLUSHES = obs_metrics.counter(
    "repro_stream_flushes_total",
    "Buffered-window fan-outs shipped to the shard pool.",
)
_FLUSHED_ROWS = obs_metrics.counter(
    "repro_stream_flushed_rows_total",
    "Rows fanned out to shard workers for window accumulation.",
)


def _accumulate_task(
    rows: FlowTable,
    layouts: tuple[tuple, ...],
) -> list[tuple]:
    """Worker task: one shard's window partial per accumulator layout.

    ``rows`` is the shard's slice of a window (a zero-copy shm view
    when the executor's IPC mode allows). ``layouts`` lists distinct
    ``(features, weightings)`` pairs needed by the engine's detectors;
    each yields one array-form partial
    (:func:`~repro.stream.incremental.accumulate_payload`) over the
    shard's rows. Partials travel back as flat numpy buffers — with
    shm descriptors shipping the rows in, this keeps both directions
    of the fan-out off the pickle hot path.
    """
    return [
        accumulate_payload(rows, features, weightings)
        for features, weightings in layouts
    ]


class ShardedStreamEngine(StreamEngine):
    """Stream engine whose window accumulation fans out over shards."""

    def __init__(
        self,
        detectors: Iterable[StreamingDetector],
        workers: int = 1,
        partition: PartitionSpec | None = None,
        executor: ShardExecutor | None = None,
        ipc: str = "auto",
        flush_rows: int = 262_144,
        window_seconds: float = DEFAULT_BIN_SECONDS,
        origin: float | None = None,
        lateness_seconds: float | None = 0.0,
        retain_windows: int = 16,
        alarmdb: AlarmDatabase | None = None,
        dedup_window: float | None = None,
        triage: bool = False,
        auto_close_windows: int | None = None,
        config: SystemConfig | None = None,
        on_window=None,
        archive=None,
    ) -> None:
        if executor is not None:
            # A caller handing us a pool means that much fan-out: an
            # explicit ShardExecutor(4) must not silently run 1 shard.
            workers = max(workers, executor.workers)
        if partition is None:
            partition = PartitionSpec(shards=max(workers, 1))
        self._owns_executor = executor is None
        if executor is None:
            executor = ShardExecutor(workers, ipc=ipc)
        self.partition = partition
        self.executor = executor
        super().__init__(
            detectors,
            window_seconds=window_seconds,
            origin=origin,
            lateness_seconds=lateness_seconds,
            retain_windows=retain_windows,
            alarmdb=alarmdb,
            dedup_window=dedup_window,
            triage=triage,
            auto_close_windows=auto_close_windows,
            config=config,
            on_window=on_window,
            workers=workers,
            executor=executor,
            archive=archive,
        )
        if flush_rows < 1:
            raise StoreError(
                f"flush_rows must be >= 1: {flush_rows!r}"
            )
        self.flush_rows = flush_rows
        # Distinct accumulator layouts across detectors; detectors
        # sharing a layout share the merged window partial.
        self._layouts: list[tuple] = []
        self._layout_of: list[int] = []
        for detector in self.detectors:
            template = detector.make_accumulator()
            layout = (template.features, template.weightings)
            if layout not in self._layouts:
                self._layouts.append(layout)
            self._layout_of.append(self._layouts.index(layout))
        #: Open-window buffers: window index -> routed sub-chunks, in
        #: arrival order (split into shard slices at fan-out).
        #: Bounded: once a window holds ``flush_rows`` buffered rows
        #: the buffer fans out into :attr:`_partials` and is dropped,
        #: so raw rows never accumulate past the threshold.
        self._buckets: dict[int, list[FlowTable]] = {}
        self._buffered: dict[int, int] = {}
        #: Per-layout array-form partials of already-flushed rows
        #: (one list of payloads per layout); merged into scoring
        #: accumulators once, when the window seals.
        self._partials: dict[int, list[list[tuple]]] = {}

    def close(self) -> None:
        """Release worker processes and buffered window state."""
        super().close()
        self._buckets.clear()
        self._buffered.clear()
        self._partials.clear()
        if self._owns_executor:
            self.executor.close()

    # -- ingest ------------------------------------------------------------

    def _observe(self, index: int, rows: FlowTable) -> None:
        """Buffer a routed sub-chunk; fan out when full.

        Deliberately does **no** numpy work per chunk: concatenation
        and per-shard slicing happen once per fan-out over the whole
        buffered window, not once per arriving sub-chunk.
        """
        self._buckets.setdefault(index, []).append(rows)
        buffered = self._buffered.get(index, 0) + len(rows)
        if buffered >= self.flush_rows:
            self._flush(index)
        else:
            self._buffered[index] = buffered

    def _flush(self, index: int) -> None:
        """Fan one window's buffered rows out; bank the partials.

        Keeps ingest memory bounded: raw rows of an open window never
        exceed ``flush_rows`` — array-form partials (aggregated value
        histograms, never raw rows) carry the rest, and merging them
        at seal is exact (integer counts).
        """
        tables = self._buckets.pop(index, None)
        self._buffered.pop(index, None)
        if tables is None:
            return
        tables = [table for table in tables if len(table)]
        if not tables:
            return
        pending = self._partials.get(index)
        if pending is None:
            pending = self._partials[index] = [
                [] for _ in self._layouts
            ]
        layouts = tuple(self._layouts)
        # Fan out *contiguous* equal row spans, not hash-gathered
        # shards. Array-form partials are canonical (value-sorted,
        # integer counts), so any equal split of the rows merges back
        # to the identical window state — only mining needs
        # key-consistent shards. Each span is a group of zero-copy
        # views over the buffered sub-chunks (split at shard
        # boundaries by slicing), and the executor lays a group out
        # back-to-back in its segment as one block — one memcpy per
        # row total, where the hash split paid a vectorized hash pass
        # plus one full-window boolean gather per shard, after a
        # window-sized concat. Because the split is free to vary, it
        # is sized to what the pool can actually run at once
        # (executor.parallelism): oversplitting a small box pays
        # per-piece staging and merge costs for zero extra overlap.
        pieces = max(
            1, min(self.partition.shards, self.executor.parallelism)
        )
        total = sum(len(table) for table in tables)
        step = -(-total // pieces)
        groups: list[list[FlowTable]] = []
        current: list[FlowTable] = []
        filled = 0
        for table in tables:
            start, count = 0, len(table)
            while start < count:
                take = min(count - start, step - filled)
                current.append(
                    table if take == count
                    else table.select(slice(start, start + take))
                )
                filled += take
                start += take
                if filled == step:
                    groups.append(current)
                    current, filled = [], 0
        if current:
            groups.append(current)
        if obs_metrics.enabled():
            _FLUSHES.inc()
            _FLUSHED_ROWS.inc(total)
        # Execution-detail provenance (``exec.*``): the fan-out shape
        # tracks worker count by design, so these events are excluded
        # from the journal's canonical (determinism-compared) form.
        dispatch_event = obs_events.emit(
            "exec.dispatch",
            window=index,
            rows=total,
            pieces=len(groups),
        ) if obs_events.enabled() else None
        with obs_events.causal(dispatch_event):
            payload_lists = self.executor.map_table_groups(
                _accumulate_task,
                groups,
                [(layouts,)] * len(groups),
            )
        for payloads in payload_lists:
            for bucket, payload in zip(pending, payloads):
                bucket.append(payload)
        if dispatch_event is not None:
            obs_events.emit(
                "exec.fold",
                parent=dispatch_event,
                window=index,
                pieces=len(payload_lists),
            )

    # -- window close ------------------------------------------------------

    def _seal(self, window: ClosedWindow) -> WindowResult:
        self._flush(window.index)
        pending = self._partials.pop(
            window.index, [[] for _ in self._layouts]
        )
        merged = [
            merge_payloads(features, weightings, payloads)
            for (features, weightings), payloads in zip(
                self._layouts, pending
            )
        ]
        # Seed the merged state so the adapters' close() pops it and
        # evaluates through the shared batch entry points.
        for detector, layout_index in zip(
            self.detectors, self._layout_of
        ):
            detector.seed_state(window.index, merged[layout_index])
        return super()._seal(window)
