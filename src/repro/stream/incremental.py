"""Incremental detector state: rolling histograms and accumulators.

Batch detectors recompute a window's features from all of its flows.
Streaming cannot afford that: a window's rows arrive spread over many
chunks, and recomputing per chunk would be quadratic. Instead a
:class:`WindowAccumulator` folds each arriving chunk into rolling
state — volume counters and per-feature value histograms, counted
vectorized per chunk and merged as exact integer counters — from which
the window's detector inputs (entropies, bucket histograms,
attribution histograms) are derived at close time.

Equivalence with the batch path is by construction, not by luck:

* counts are integers, so chunk-merged histograms equal the one-pass
  batch histograms exactly, regardless of chunk boundaries or order;
* entropies are computed from the counts in ascending value order —
  the same order ``np.unique`` gives the batch path — so even the
  float sums are bit-identical;
* scoring and attribution call the *same* detector methods
  (:meth:`~repro.detect.netreflex.NetReflexDetector.evaluate_window`,
  :meth:`~repro.detect.histogram.HistogramKLDetector.evaluate_window`)
  the batch ``detect()`` uses.

The property suite (``tests/test_stream.py``) asserts the equivalence
end to end over randomized traces, chunkings and arrival orders.
"""

from __future__ import annotations

import abc
from collections import Counter

import numpy as np

from repro.detect.base import Alarm, Detector
from repro.detect.entropy import entropy_of_count_array
from repro.detect.features import BinFeatures
from repro.detect.histogram import HistogramKLDetector
from repro.detect.netreflex import NetReflexDetector
from repro.errors import DetectorError, FlowError
from repro.flows.record import FlowFeature
from repro.flows.table import FlowTable

__all__ = [
    "WindowAccumulator",
    "accumulate_payload",
    "merge_payloads",
    "StreamingDetector",
    "StreamingNetReflex",
    "StreamingHistogramKL",
    "streaming_adapter",
]

_HEADER_FEATURES = (
    FlowFeature.SRC_IP,
    FlowFeature.DST_IP,
    FlowFeature.SRC_PORT,
    FlowFeature.DST_PORT,
)


class WindowAccumulator:
    """Rolling state of one open window.

    ``weightings`` names the histogram weightings to maintain per
    feature (``"flows"``/``"packets"``/``"bytes"``); volume counters
    are always kept.

    State is held in *array form*: each folded chunk contributes one
    payload of ``np.unique``-sorted ``(values, counts)`` arrays per
    feature (see :func:`accumulate_payload`), pending payloads merge
    vectorized on first read, and the ``Counter`` views the detectors
    score from are materialised lazily, once per window. Counts are
    exact integers throughout, so any chunking/sharding of the same
    rows produces identical state.
    """

    __slots__ = ("flows", "packets", "bytes", "_features",
                 "_weightings", "_pending", "_merged", "_counters")

    def __init__(
        self,
        features: tuple[FlowFeature, ...] = _HEADER_FEATURES,
        weightings: tuple[str, ...] = ("flows",),
    ) -> None:
        self.flows = 0
        self.packets = 0
        self.bytes = 0
        self._features = features
        self._weightings = weightings
        #: Unmerged array-form payload value maps, newest last.
        self._pending: list[dict] = []
        #: Fully merged value map: feature -> (values, counts-per-
        #: weighting tuple), or None until first materialisation.
        self._merged: dict | None = None
        #: Lazily built Counter views keyed by (feature, weighting).
        self._counters: dict[tuple[FlowFeature, str], Counter] = {}

    @property
    def features(self) -> tuple[FlowFeature, ...]:
        """Features this accumulator keeps histograms for."""
        return self._features

    @property
    def weightings(self) -> tuple[str, ...]:
        """Histogram weightings maintained per feature."""
        return self._weightings

    def add_payload(self, payload: tuple[int, int, int, dict]) -> None:
        """Fold one array-form partial (:func:`accumulate_payload`)."""
        flows, packets, bytes_, values = payload
        if not flows:
            return
        self.flows += flows
        self.packets += packets
        self.bytes += bytes_
        self._pending.append(values)
        self._counters.clear()

    def merge(self, other: "WindowAccumulator") -> None:
        """Fold another accumulator's state into this one.

        Integer-count addition is associative and commutative, so
        merging per-shard partials equals one-pass accumulation of
        the same rows — the sharded stream engine's window-close step.
        ``other`` must maintain the same (features, weightings).
        """
        if (other._features, other._weightings) != (
            self._features, self._weightings
        ):
            raise FlowError(
                "cannot merge accumulators with different layouts"
            )
        self.flows += other.flows
        self.packets += other.packets
        self.bytes += other.bytes
        if other._merged:
            self._pending.append(other._merged)
        self._pending.extend(other._pending)
        self._counters.clear()

    @staticmethod
    def _weight_column(chunk: FlowTable, weighting: str) -> np.ndarray | None:
        """Per-row weights; ``None`` means count rows (flow weighting)."""
        if weighting == "flows":
            return None
        if weighting == "packets":
            return chunk.packets
        if weighting == "bytes":
            return chunk.bytes
        raise FlowError(f"unknown weighting {weighting!r}")

    def update(self, chunk: FlowTable) -> None:
        """Fold one chunk into the rolling state (vectorized per chunk).

        Counting matches ``repro.flows.aggregate``'s table histograms
        operation for operation (``np.unique`` + ``bincount``/exact
        int64 ``add.at``), but the unique/inverse factorization of each
        feature column is computed once and shared by every weighting —
        the dominant per-chunk cost on the ingest hot path.
        """
        self.add_payload(
            accumulate_payload(chunk, self._features, self._weightings)
        )

    def _materialized(self) -> dict:
        """The merged value map; folds any pending payloads first."""
        if self._pending:
            sources = self._pending
            if self._merged:
                sources = [self._merged, *sources]
            merged: dict = {}
            for feature in self._features:
                parts = [
                    source[feature]
                    for source in sources
                    if feature in source
                ]
                if parts:
                    merged[feature] = _merge_value_parts(parts)
            self._merged = merged
            self._pending = []
        elif self._merged is None:
            self._merged = {}
        return self._merged

    def histogram(self, feature: FlowFeature, weighting: str) -> Counter:
        """The rolling value histogram for one (feature, weighting)."""
        if feature not in self._features \
                or weighting not in self._weightings:
            raise KeyError((feature, weighting))
        key = (feature, weighting)
        counter = self._counters.get(key)
        if counter is None:
            entry = self._materialized().get(feature)
            if entry is None:
                counter = Counter()
            else:
                values, counts = entry
                column = counts[self._weightings.index(weighting)]
                counter = Counter(
                    dict(zip(values.tolist(), column.tolist()))
                )
            self._counters[key] = counter
        return counter

    def entropy(self, feature: FlowFeature) -> float:
        """Sample entropy of the flow-weighted value distribution.

        Counts are laid out in ascending value order — exactly the
        order the batch path's ``np.unique`` produces — so the float
        accumulation matches the batch entropy bit for bit.
        """
        if feature not in self._features \
                or "flows" not in self._weightings:
            raise KeyError((feature, "flows"))
        entry = self._materialized().get(feature)
        if entry is None:
            return 0.0
        return entropy_of_count_array(
            entry[1][self._weightings.index("flows")]
        )

    def bin_features(self) -> BinFeatures:
        """The window's detector feature vector (batch-identical)."""
        return BinFeatures(
            flows=self.flows,
            packets=self.packets,
            bytes=self.bytes,
            entropy_src_ip=self.entropy(FlowFeature.SRC_IP),
            entropy_dst_ip=self.entropy(FlowFeature.DST_IP),
            entropy_src_port=self.entropy(FlowFeature.SRC_PORT),
            entropy_dst_port=self.entropy(FlowFeature.DST_PORT),
        )


# -- array-form partials (the accumulator's native + IPC format) -------------
#
# A *payload* is one chunk's (or shard's) window partial as plain
# numpy arrays: ``(flows, packets, bytes, values)`` where ``values``
# maps each feature to ``(unique_values, (counts, ...))`` — one
# int64-exact count array per weighting, all in ascending value order.
# It carries exactly the information the old Counter-dict state did
# but pickles as flat buffers instead of per-item dict entries — the
# dominant result-path cost when partials come back from worker
# processes — and merges vectorized. Counts are exact integers, so
# payload merging equals Counter merging equals one-pass accumulation
# for any chunking or shard split.

#: Largest count shipped as int32; merging always widens to int64.
_INT32_MAX = np.iinfo(np.int32).max


def accumulate_payload(
    chunk: FlowTable,
    features: tuple[FlowFeature, ...],
    weightings: tuple[str, ...],
) -> tuple[int, int, int, dict]:
    """One chunk's window partial in array form (cheap to ship).

    Counting matches :mod:`repro.flows.aggregate`'s table histograms
    operation for operation (``np.unique`` + ``bincount``/exact int64
    ``add.at``, one factorization shared per feature). Count arrays
    that fit are narrowed to int32 for the trip through the worker
    pool's pipe; merging widens back to int64 before any arithmetic
    that could overflow.
    """
    if not len(chunk):
        return (0, 0, 0, {})
    values: dict = {}
    weight_columns = [
        WindowAccumulator._weight_column(chunk, weighting)
        for weighting in weightings
    ]
    for feature in features:
        column_values, inverse = np.unique(
            chunk.feature_column(feature), return_inverse=True
        )
        per_weighting = []
        for weights in weight_columns:
            if weights is None:
                counts = np.bincount(
                    inverse, minlength=len(column_values)
                )
            else:
                counts = np.zeros(len(column_values), dtype=np.int64)
                np.add.at(counts, inverse, weights)
            if counts.size and int(counts.max()) <= _INT32_MAX:
                counts = counts.astype(np.int32, copy=False)
            per_weighting.append(counts)
        values[feature] = (column_values, tuple(per_weighting))
    return (
        len(chunk),
        chunk.total_packets(),
        chunk.total_bytes(),
        values,
    )


def _merge_value_parts(parts: list[tuple]) -> tuple:
    """Merge per-feature ``(values, counts-per-weighting)`` parts.

    Equal values sum exactly in int64; the merged arrays stay in the
    ascending value order every other path (``np.unique``) produces.
    """
    if len(parts) == 1:
        values, counts = parts[0]
        return (
            values,
            tuple(
                column.astype(np.int64, copy=False)
                for column in counts
            ),
        )
    all_values = np.concatenate([part[0] for part in parts])
    merged_values, inverse = np.unique(all_values, return_inverse=True)
    merged_counts = []
    for index in range(len(parts[0][1])):
        column = np.zeros(len(merged_values), dtype=np.int64)
        np.add.at(
            column,
            inverse,
            np.concatenate([part[1][index] for part in parts]),
        )
        merged_counts.append(column)
    return (merged_values, tuple(merged_counts))


def merge_payloads(
    features: tuple[FlowFeature, ...],
    weightings: tuple[str, ...],
    payloads: list[tuple[int, int, int, dict]],
) -> WindowAccumulator:
    """Fold array-form partials into one scored-ready accumulator.

    Cheap by construction: payloads are only *banked* here — the
    vectorized merge and the Counter views materialise lazily when
    the detectors first read the state.
    """
    accumulator = WindowAccumulator(
        features=features, weightings=weightings
    )
    for payload in payloads:
        accumulator.add_payload(payload)
    return accumulator


class StreamingDetector(abc.ABC):
    """Adapter driving one batch detector from incremental window state.

    The runtime calls :meth:`observe` for every routed sub-chunk and
    :meth:`close` exactly once per window, in window order. Closing
    discards the window's state.
    """

    def __init__(self, detector: Detector) -> None:
        self.detector = detector
        self._open: dict[int, WindowAccumulator] = {}

    @property
    def name(self) -> str:
        return self.detector.name

    @abc.abstractmethod
    def _new_accumulator(self) -> WindowAccumulator:
        """Fresh per-window state."""

    @abc.abstractmethod
    def _evaluate(
        self, index: int, start: float, end: float,
        state: WindowAccumulator,
    ) -> Alarm | None:
        """Score one closed window from its accumulated state."""

    def make_accumulator(self) -> WindowAccumulator:
        """A fresh accumulator of this detector's layout (public seam)."""
        return self._new_accumulator()

    def seed_state(
        self, index: int, state: WindowAccumulator
    ) -> None:
        """Install externally accumulated state for one open window.

        The sharded stream engine accumulates per shard and merges, then
        seeds the merged state here so :meth:`close` evaluates it through
        the standard path.
        """
        self._open[index] = state

    def observe(self, index: int, chunk: FlowTable) -> None:
        """Fold a routed sub-chunk into the window's rolling state."""
        state = self._open.get(index)
        if state is None:
            state = self._open[index] = self._new_accumulator()
        state.update(chunk)

    def close(self, index: int, start: float, end: float) -> list[Alarm]:
        """Seal a window: evaluate its state and drop it."""
        state = self._open.pop(index, None)
        if state is None:
            state = self._new_accumulator()
        alarm = self._evaluate(index, start, end, state)
        return [alarm] if alarm is not None else []

    @property
    def open_windows(self) -> int:
        """Number of windows currently holding state."""
        return len(self._open)


class StreamingNetReflex(StreamingDetector):
    """Incremental adapter over a trained :class:`NetReflexDetector`.

    Accumulates the volume/entropy feature vector plus the attribution
    histograms per window; closing evaluates the PCA subspace model on
    the accumulated vector — the exact computation batch ``detect()``
    performs per bin, including on empty bins.
    """

    def __init__(self, detector: NetReflexDetector) -> None:
        super().__init__(detector)
        weightings = tuple(detector.config.weightings)
        if "flows" not in weightings:
            # Entropy always needs the flow-weighted distribution.
            weightings = ("flows", *weightings)
        self._weightings = weightings

    def _new_accumulator(self) -> WindowAccumulator:
        return WindowAccumulator(
            features=_HEADER_FEATURES, weightings=self._weightings
        )

    def _evaluate(
        self, index: int, start: float, end: float,
        state: WindowAccumulator,
    ) -> Alarm | None:
        detector: NetReflexDetector = self.detector
        histograms = {
            (feature, weighting): state.histogram(feature, weighting)
            for feature in _HEADER_FEATURES
            for weighting in detector.config.weightings
        }
        return detector.evaluate_window(
            index, start, end, state.bin_features(), histograms
        )


class StreamingHistogramKL(StreamingDetector):
    """Incremental adapter over a trained :class:`HistogramKLDetector`.

    Accumulates per-feature raw value histograms under the detector's
    configured weighting; closing folds them into the hashed bucket
    histograms and runs the batch KL scoring. Empty windows stay
    silent, matching batch ``detect()``.
    """

    def __init__(self, detector: HistogramKLDetector) -> None:
        super().__init__(detector)

    def _new_accumulator(self) -> WindowAccumulator:
        detector: HistogramKLDetector = self.detector
        return WindowAccumulator(
            features=tuple(detector.config.features),
            weightings=(detector.config.weight,),
        )

    def _evaluate(
        self, index: int, start: float, end: float,
        state: WindowAccumulator,
    ) -> Alarm | None:
        if state.flows == 0:
            return None
        detector: HistogramKLDetector = self.detector
        values = {
            feature: state.histogram(feature, detector.config.weight)
            for feature in detector.config.features
        }
        return detector.evaluate_window(index, start, end, values)


def streaming_adapter(detector: Detector) -> StreamingDetector:
    """Wrap a trained batch detector in its streaming adapter."""
    if isinstance(detector, NetReflexDetector):
        return StreamingNetReflex(detector)
    if isinstance(detector, HistogramKLDetector):
        return StreamingHistogramKL(detector)
    raise DetectorError(
        f"no streaming adapter for {type(detector).__name__}"
    )
