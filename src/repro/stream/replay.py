"""Trace replay at a configurable speedup — benchmarking and forensics.

The GEANT deployment triaged alarms against a rotating NfDump archive;
reproducing an incident means replaying the recorded flows *as if
live*, only faster. :class:`ReplayDriver` adapts any recorded or
synthetic trace into a paced chunk source: ``speedup=1`` replays in
real time, ``speedup=60`` compresses an hour into a minute, and
``speedup=None`` (max rate) replays as fast as the hardware allows —
the mode the benchmarks and the equivalence tests use.

Pacing is by event time: a chunk whose first flow starts ``T`` seconds
into the trace is released ``T / speedup`` wall seconds after the
replay began. The clock and sleep functions are injectable so pacing
logic is testable without real waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.errors import StoreError
from repro.flows.table import FlowTable
from repro.flows.trace import FlowTrace
from repro.stream.runtime import StreamEngine, WindowResult
from repro.stream.sources import DEFAULT_CHUNK_ROWS, table_chunks

__all__ = ["ReplayStats", "ReplayDriver"]


@dataclass(frozen=True, slots=True)
class ReplayStats:
    """Outcome of one replay run."""

    flows: int
    chunks: int
    event_seconds: float
    wall_seconds: float
    target_speedup: float | None

    @property
    def achieved_speedup(self) -> float:
        """Event-time seconds replayed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.event_seconds / self.wall_seconds

    @property
    def flows_per_second(self) -> float:
        """Sustained ingest rate over the whole replay."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.flows / self.wall_seconds


class ReplayDriver:
    """Replay a trace as a (paced) stream of table chunks."""

    def __init__(
        self,
        flows: FlowTable | FlowTrace,
        speedup: float | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if speedup is not None and speedup <= 0:
            raise StoreError(f"speedup must be positive: {speedup!r}")
        table = flows.table if isinstance(flows, FlowTrace) else flows
        #: Replay follows event-time order, like a live capture would.
        self.table = table.sorted_by_start()
        self.speedup = speedup
        self.chunk_rows = chunk_rows
        self.clock = clock
        self.sleep = sleep
        self.last_stats: ReplayStats | None = None

    @property
    def event_seconds(self) -> float:
        """Event-time span of the trace being replayed."""
        if not len(self.table):
            return 0.0
        return float(self.table.start[-1]) - float(self.table.start[0])

    def chunks(self) -> Iterator[FlowTable]:
        """Paced chunk stream; records :attr:`last_stats` when drained."""
        started = self.clock()
        event_origin = (
            float(self.table.start[0]) if len(self.table) else 0.0
        )
        count = 0
        flows = 0
        for chunk in table_chunks(self.table, chunk_rows=self.chunk_rows):
            if self.speedup is not None:
                due = (float(chunk.start[0]) - event_origin) / self.speedup
                delay = due - (self.clock() - started)
                if delay > 0:
                    self.sleep(delay)
            count += 1
            flows += len(chunk)
            yield chunk
        self.last_stats = ReplayStats(
            flows=flows,
            chunks=count,
            event_seconds=self.event_seconds,
            wall_seconds=self.clock() - started,
            target_speedup=self.speedup,
        )

    def replay(
        self, engine: StreamEngine
    ) -> tuple[list[WindowResult], ReplayStats]:
        """Drive a :class:`StreamEngine` through the whole replay."""
        results = engine.run(self.chunks())
        assert self.last_stats is not None
        # run() drains the generator fully, then flushes; the wall time
        # in last_stats covers ingest and detection but not the flush.
        return results, self.last_stats
