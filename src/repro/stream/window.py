"""The bounded window ring: rotation slices, watermark, lateness.

:class:`WindowRing` is the streaming counterpart of NfDump's rotating
capture directory. Incoming :class:`~repro.flows.table.FlowTable`
chunks are routed by flow start time into fixed-width windows (the
:class:`~repro.flows.store.FlowStore` rotation slices), a *watermark*
tracks stream progress, and windows close — permanently — once the
watermark passes their right edge.

The contract, which the test suite pins down:

* **Watermark** = max flow start time seen so far minus the lateness
  horizon. It is monotone: a chunk of old flows never moves it back.
* **Lateness horizon** ``lateness_seconds``: out-of-order rows are
  admitted as long as their window is still open. A window
  ``[s, s+W)`` closes when the watermark reaches ``s+W``, i.e. after
  the stream has progressed ``lateness_seconds`` past the window edge.
  ``lateness_seconds=None`` means an unbounded horizon — windows close
  only on :meth:`flush` (forensic replay of unordered archives).
* **Late rows** targeting a closed window are dropped and counted,
  never silently re-opened — a closed window's results are final.
* Windows close **in index order**, including empty ones, so a
  downstream consumer sees exactly the bin sequence a batch run over
  the same data would see.
* **Retention**: only the most recent ``retain_windows`` windows stay
  in the backing store (the triage archive); older slices expire like
  NfDump's disk budget.
* **Persistence**: with an ``archive``
  (:class:`~repro.archive.writer.ArchiveWriter`), every closed
  non-empty window is written to disk as one sealed, sorted partition
  *before* retention can evict it — the ring's eviction becomes
  tiering instead of loss, and a restarted process can triage
  against the archived windows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import StoreError
from repro.flows.store import FlowStore
from repro.flows.table import FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS

__all__ = ["ClosedWindow", "IngestResult", "WindowRing"]


@dataclass(frozen=True, slots=True)
class ClosedWindow:
    """One window the ring has sealed."""

    index: int
    start: float
    end: float
    flows: int


@dataclass(frozen=True, slots=True)
class IngestResult:
    """Outcome of routing one chunk into the ring.

    ``routed`` lists ``(window_index, rows)`` sub-chunks in window
    order — the engine feeds these to the incremental detector states.
    """

    admitted: int
    late_dropped: int
    routed: tuple[tuple[int, FlowTable], ...]


class WindowRing:
    """Bounded ring of time-sliced windows over a rotating flow store."""

    def __init__(
        self,
        window_seconds: float = DEFAULT_BIN_SECONDS,
        origin: float | None = None,
        lateness_seconds: float | None = 0.0,
        retain_windows: int = 16,
        archive=None,
    ) -> None:
        if window_seconds <= 0:
            raise StoreError(
                f"window_seconds must be positive: {window_seconds!r}"
            )
        if lateness_seconds is not None and lateness_seconds < 0:
            raise StoreError(
                f"lateness_seconds must be >= 0: {lateness_seconds!r}"
            )
        if retain_windows < 1:
            raise StoreError(
                f"retain_windows must be >= 1: {retain_windows!r}"
            )
        self.window_seconds = float(window_seconds)
        self.lateness_seconds = lateness_seconds
        self.retain_windows = retain_windows
        #: Optional :class:`~repro.archive.writer.ArchiveWriter`;
        #: closed windows persist through it. Its rotation width must
        #: equal the ring's so window index == archive slice index.
        self.archive = archive
        if archive is not None and \
                archive.slice_seconds != float(window_seconds):
            raise StoreError(
                f"archive rotates every {archive.slice_seconds}s but the "
                f"ring closes {window_seconds}s windows; they must match"
            )
        if archive is not None and origin is None:
            # Reopening an archive whose grid is already fixed: the
            # ring must land windows on the same slice boundaries.
            origin = archive.origin
        self._origin = origin
        self.store = FlowStore(
            slice_seconds=self.window_seconds, origin=origin
        )
        if archive is not None and origin is not None:
            archive.set_origin(float(origin))
        self._max_event = -math.inf
        self._next_to_close = 0
        self._max_populated = -1
        self._flows = 0
        self._late_dropped = 0

    # -- geometry ----------------------------------------------------------

    @property
    def origin(self) -> float | None:
        """Left edge of window 0; ``None`` until the first row fixes it."""
        return self._origin

    def interval(self, index: int) -> tuple[float, float]:
        """``[start, end)`` of window ``index``."""
        if self._origin is None:
            raise StoreError("ring origin not fixed yet (no rows ingested)")
        start = self._origin + index * self.window_seconds
        return (start, start + self.window_seconds)

    @property
    def watermark(self) -> float:
        """Stream progress: max start time seen minus the lateness horizon.

        ``-inf`` before any row arrives, and forever with an unbounded
        lateness horizon (windows then close only on :meth:`flush`).
        """
        if self.lateness_seconds is None:
            return -math.inf
        return self._max_event - self.lateness_seconds

    @property
    def watermark_lag_seconds(self) -> float:
        """Event-time distance from the stream head to the close
        frontier — how far the next window due to seal trails the
        newest row seen. 0 before the origin is fixed; grows while a
        window fills, drops by ``window_seconds`` at each seal. The
        live gauge behind ``repro_stream_watermark_lag_seconds``.
        """
        if self._origin is None or self._max_event == -math.inf:
            return 0.0
        frontier = self.interval(self._next_to_close)[1]
        return max(0.0, self._max_event - frontier)

    @property
    def closed_through(self) -> int:
        """Number of windows closed so far (windows ``0..n-1``)."""
        return self._next_to_close

    @property
    def flows_ingested(self) -> int:
        return self._flows

    @property
    def late_dropped(self) -> int:
        return self._late_dropped

    # -- ingest ------------------------------------------------------------

    def _fix_origin(self, first_seen: float) -> None:
        if self._origin is None:
            self._origin = (
                math.floor(first_seen / self.window_seconds)
                * self.window_seconds
            )
            self.store.set_origin(self._origin)
            if self.archive is not None:
                self.archive.set_origin(self._origin)

    def ingest(self, chunk: FlowTable) -> IngestResult:
        """Route one chunk's rows into their windows.

        Rows whose window has already closed (or that precede window 0)
        are dropped as late; everything else is admitted to both the
        backing store and the per-window sub-chunks handed back for
        incremental detector updates. The watermark only ever advances.
        """
        if not len(chunk):
            return IngestResult(admitted=0, late_dropped=0, routed=())
        starts = chunk.start
        self._fix_origin(float(starts.min()))
        self._max_event = max(self._max_event, float(starts.max()))
        indices = np.floor(
            (starts - self._origin) / self.window_seconds
        ).astype(np.int64)
        live = indices >= self._next_to_close
        late = int(len(chunk) - int(live.sum()))
        self._late_dropped += late
        routed: list[tuple[int, FlowTable]] = []
        if late:
            chunk = chunk.select(live)
            indices = indices[live]
        for index in np.unique(indices):
            rows = chunk.select(indices == index)
            routed.append((int(index), rows))
            self._max_populated = max(self._max_populated, int(index))
        # Window index == store slice index (same width, same origin),
        # so the routed sub-chunks go straight into the archive — no
        # second partitioning pass.
        self._flows += self.store.insert_partitioned(routed)
        return IngestResult(
            admitted=len(chunk),
            late_dropped=late,
            routed=tuple(routed),
        )

    # -- closing -----------------------------------------------------------

    def _seal(self, index: int) -> ClosedWindow:
        start, end = self.interval(index)
        flows = self.store.count(start, end).flows
        window = ClosedWindow(index=index, start=start, end=end, flows=flows)
        if self.archive is not None and flows:
            # One sealed, sorted partition per closed window, written
            # before retention can evict the rows: the window's result
            # is final (late rows can never reopen it), so its durable
            # copy is, too.
            self.archive.write_partition(
                self.store.query_table(start, end),
                slice_index=index,
                sealed=True,
                sorted_rows=True,
            )
        self._next_to_close = index + 1
        keep_from = self._next_to_close - self.retain_windows
        if keep_from > 0:
            self.store.expire_before(self.interval(keep_from)[0])
        return window

    def close_due(self) -> list[ClosedWindow]:
        """Seal every window the watermark has passed, in index order."""
        if self._origin is None:
            return []
        closed: list[ClosedWindow] = []
        while self.interval(self._next_to_close)[1] <= self.watermark:
            closed.append(self._seal(self._next_to_close))
        return closed

    def flush(self) -> list[ClosedWindow]:
        """Seal everything through the last populated window.

        End-of-stream: ignores the lateness horizon so a finite replay
        terminates with the same window coverage as a batch run.
        """
        closed: list[ClosedWindow] = []
        while self._next_to_close <= self._max_populated:
            closed.append(self._seal(self._next_to_close))
        return closed

    # -- queries -----------------------------------------------------------

    def window_table(self, index: int) -> FlowTable:
        """Columnar view of one retained window (sorted, like a query)."""
        start, end = self.interval(index)
        return self.store.query_table(start, end)
