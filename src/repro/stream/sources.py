"""Unbounded flow sources for the streaming engine.

A *source* is any iterable of :class:`~repro.flows.table.FlowTable`
chunks; the engine consumes chunks one at a time and never needs the
whole stream in memory. The helpers here adapt the shapes a deployment
actually has — an in-memory table, a recorded ``.rpv5`` trace, a synth
scenario, a CSV file another process keeps appending to — into that
common chunk protocol.

Chunks carry no ordering contract: the :class:`~repro.stream.window.WindowRing`
routes every row by its start time and handles out-of-order and late
arrivals. Sources that *are* time-ordered (recorded traces) simply let
the watermark advance faster.
"""

from __future__ import annotations

import csv
import io
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import CodecError
from repro.flows.flowio import iter_binary_tables
from repro.flows.table import FlowTable
from repro.flows.trace import FlowTrace

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "table_chunks",
    "binary_file_chunks",
    "scenario_chunks",
    "tail_csv_chunks",
]

#: Default rows per streamed chunk. Smaller than the file readers'
#: 65536 on purpose: a streaming engine trades a little per-chunk
#: overhead for lower watermark latency.
DEFAULT_CHUNK_ROWS = 8_192


def table_chunks(
    flows: FlowTable | FlowTrace,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[FlowTable]:
    """Slice an in-memory table (or trace) into row chunks."""
    if chunk_rows <= 0:
        raise CodecError(f"chunk_rows must be positive: {chunk_rows!r}")
    table = flows.table if isinstance(flows, FlowTrace) else flows
    for offset in range(0, len(table), chunk_rows):
        yield table.select(slice(offset, offset + chunk_rows))


def binary_file_chunks(
    path: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[FlowTable]:
    """Stream a recorded ``.rpv5`` trace as table chunks."""
    yield from iter_binary_tables(path, chunk_rows=chunk_rows)


def scenario_chunks(
    scenario,
    seed: int = 0,
    sampling_rate: int = 1,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> Iterator[FlowTable]:
    """Render a :class:`~repro.synth.scenario.Scenario` and stream it.

    The scenario is rendered once (same semantics as the batch
    :meth:`~repro.synth.scenario.Scenario.build`) and then chunked in
    time order, so the stream behaves like a live capture of the
    scenario's epoch.
    """
    labeled = scenario.build(seed=seed, sampling_rate=sampling_rate)
    yield from table_chunks(labeled.trace.table, chunk_rows=chunk_rows)


def tail_csv_chunks(
    path: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    poll_seconds: float = 0.2,
    idle_polls: int | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[FlowTable]:
    """Tail a growing CSV flow log, yielding chunks as rows appear.

    The file must carry the standard :data:`~repro.flows.flowio.CSV_FIELDS`
    header. Only complete lines are consumed; a partially written last
    line is left for the next poll, so a concurrent appender never
    produces a torn row. ``idle_polls`` bounds how many consecutive
    empty polls to tolerate before the tail ends (``None`` tails
    forever — the live-deployment mode).
    """
    from repro.flows.flowio import read_csv_table

    if chunk_rows <= 0:
        raise CodecError(f"chunk_rows must be positive: {chunk_rows!r}")
    if poll_seconds <= 0:
        raise CodecError(f"poll_seconds must be positive: {poll_seconds!r}")
    path = Path(path)
    position = 0
    header: str | None = None
    pending = ""
    idle = 0
    while True:
        size = path.stat().st_size if path.exists() else 0
        if size < position:
            # Truncated/rotated file: start over from the top.
            position = 0
            header = None
            pending = ""
        grew = size > position
        if grew:
            with open(path, "r", newline="") as handle:
                handle.seek(position)
                data = pending + handle.read(size - position)
                position = size
            lines = data.splitlines(keepends=True)
            if lines and not lines[-1].endswith("\n"):
                pending = lines.pop()
            else:
                pending = ""
            rows: list[str] = []
            for line in lines:
                if header is None:
                    header = line
                    continue
                if line.strip():
                    rows.append(line)
            for offset in range(0, len(rows), chunk_rows):
                batch = rows[offset:offset + chunk_rows]
                if header is None:
                    raise CodecError(f"{path}: data before CSV header")
                chunk = read_csv_table(
                    io.StringIO(header + "".join(batch))
                )
                if len(chunk):
                    idle = 0
                    yield chunk
        if not grew:
            idle += 1
            if idle_polls is not None and idle >= idle_polls:
                return
            sleep(poll_seconds)


def _csv_header_line() -> str:
    """The canonical CSV header line (for tests and writers)."""
    from repro.flows.flowio import CSV_FIELDS

    buffer = io.StringIO()
    csv.writer(buffer).writerow(CSV_FIELDS)
    return buffer.getvalue()


# -- session-facade registration ---------------------------------------------

class TailSource:
    """``tail`` source: follow a growing CSV flow log, unbounded.

    Options: ``poll_seconds`` (default 0.2), ``idle_polls`` (stop after
    this many consecutive empty polls; default: tail forever).
    """

    kind = "tail"
    bounded = False

    _KNOWN = ("poll_seconds", "idle_polls")

    def __init__(self, spec) -> None:
        from repro.errors import SpecError

        self.spec = spec
        if not spec.path:
            raise SpecError("source kind 'tail' requires a path",
                            field="source.path")
        for key in spec.options:
            if key not in self._KNOWN:
                raise SpecError(
                    f"unknown tail option {key!r}; expected "
                    f"{', '.join(self._KNOWN)}",
                    field=f"source.options.{key}",
                )
        self.path = spec.path
        self.poll_seconds = float(spec.options.get("poll_seconds", 0.2))
        idle = spec.options.get("idle_polls")
        self.idle_polls = None if idle is None else int(idle)

    def trace(self):
        from repro.errors import SpecError

        raise SpecError(
            "source kind 'tail' is unbounded; it cannot back modes "
            "that need the whole trace",
            field="source.kind",
        )

    def chunks(self, chunk_rows: int) -> Iterator[FlowTable]:
        return tail_csv_chunks(
            self.path,
            chunk_rows=chunk_rows,
            poll_seconds=self.poll_seconds,
            idle_polls=self.idle_polls,
        )

    def describe(self) -> str:
        return f"tail {self.path}"


from repro.api.registry import sources as _sources  # noqa: E402

_sources.register("tail", TailSource)
