"""Online sliding-window engine over the columnar flow substrate.

The paper's system ran *online* against GEANT NetFlow: a detector
feeding an alarm database whose open alarms are continuously triaged
against a rotating NfDump archive. This package turns the repo's batch
pipeline into that deployment shape:

``sources``
    Unbounded flow sources delivering :class:`~repro.flows.table.FlowTable`
    chunks — in-memory tables, recorded ``.rpv5`` traces, synth
    scenarios, and a growing-CSV tail.
``window``
    :class:`WindowRing` — a bounded ring of time-sliced windows built on
    :class:`~repro.flows.store.FlowStore` rotation semantics, with a
    watermark and a configurable lateness horizon deciding when windows
    close and when stragglers are dropped.
``incremental``
    Rolling per-window feature accumulators (volume counters, value
    histograms, entropies) updated per arriving chunk, plus
    :class:`StreamingDetector` adapters that wrap the batch detectors
    of :mod:`repro.detect` with verified batch-equivalence.
``runtime``
    :class:`StreamEngine` — the loop that routes chunks, advances the
    watermark, fires detectors on window close, inserts alarms into the
    :class:`~repro.system.alarmdb.AlarmDatabase` (with optional dedup)
    and drives live triage against the ring.
``replay``
    :class:`ReplayDriver` — replays any recorded or synthetic trace at
    a configurable speedup (including max rate) for benchmarking and
    forensics.
``sharded``
    :class:`ShardedStreamEngine` — the multi-core variant: routed
    sub-chunks bucket by partition hash and the per-window
    accumulation fans out over a
    :class:`~repro.parallel.executor.ShardExecutor` at window close,
    with shard partials merged before the identical evaluation path.

The contract that makes this safe to deploy next to the batch tools:
streaming a trace through the engine yields the same alarms as the
batch ``detect`` path over the same trace (ids, windows, labels,
meta-data; scores within float tolerance), asserted by the test suite.
"""

from repro.stream.incremental import (
    StreamingDetector,
    StreamingHistogramKL,
    StreamingNetReflex,
    WindowAccumulator,
    streaming_adapter,
)
from repro.stream.replay import ReplayDriver, ReplayStats
from repro.stream.runtime import StreamEngine, StreamStats, WindowResult
from repro.stream.sharded import ShardedStreamEngine
from repro.stream.sources import (
    DEFAULT_CHUNK_ROWS,
    binary_file_chunks,
    scenario_chunks,
    table_chunks,
    tail_csv_chunks,
)
from repro.stream.window import ClosedWindow, IngestResult, WindowRing

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "binary_file_chunks",
    "scenario_chunks",
    "table_chunks",
    "tail_csv_chunks",
    "ClosedWindow",
    "IngestResult",
    "WindowRing",
    "StreamingDetector",
    "StreamingHistogramKL",
    "StreamingNetReflex",
    "WindowAccumulator",
    "streaming_adapter",
    "ShardedStreamEngine",
    "StreamEngine",
    "StreamStats",
    "WindowResult",
    "ReplayDriver",
    "ReplayStats",
]
