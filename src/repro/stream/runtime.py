"""The streaming runtime loop: ingest → watermark → detect → triage.

:class:`StreamEngine` is the online counterpart of the batch
``detect`` + ``extract`` workflow, shaped like the paper's deployment:
detectors continuously feed an alarm database whose open alarms are
triaged against a rotating flow archive while ingest continues.

Per chunk the engine (1) routes rows through the
:class:`~repro.stream.window.WindowRing`, (2) folds the routed
sub-chunks into every detector's incremental state, (3) seals windows
the watermark has passed, firing the detectors and inserting their
alarms into the :class:`~repro.system.alarmdb.AlarmDatabase`
(optionally deduplicated against streaming re-fires), and (4) drives
:meth:`~repro.system.pipeline.ExtractionSystem.process_open_alarms`
against the live ring so Table-1 triage reports stream out while flows
keep arriving.

This is a supported *compatibility entry point*: the declarative
facade (:mod:`repro.api`) composes it for ``mode = "stream"`` and is
byte-identical to driving it directly — prefer ``repro.api.session()``
/ ``Session.from_config`` for new code.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.detect.base import Alarm
from repro.flows.table import FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS
from repro.obs import events as obs_events, metrics as obs_metrics
from repro.stream.incremental import StreamingDetector
from repro.stream.window import ClosedWindow, WindowRing
from repro.system.alarmdb import AlarmDatabase, AlarmStatus
from repro.system.backend import FlowBackend
from repro.system.config import SystemConfig
from repro.system.pipeline import ExtractionSystem, TriageResult

if TYPE_CHECKING:
    from repro.parallel.executor import ShardExecutor

__all__ = ["WindowResult", "StreamStats", "StreamEngine"]

logger = logging.getLogger(__name__)

# Stream-plane instruments (no-op until obs metrics are enabled;
# recorded per chunk / per window, never per flow row).
_FLOWS = obs_metrics.counter(
    "repro_flows_ingested_total",
    "Flows admitted into the streaming window ring.",
)
_CHUNKS = obs_metrics.counter(
    "repro_stream_chunks_total",
    "Chunks processed by the stream engine.",
)
_LATE_DROPPED = obs_metrics.counter(
    "repro_stream_late_dropped_total",
    "Flows dropped for arriving behind the lateness horizon.",
)
_WINDOWS_CLOSED = obs_metrics.counter(
    "repro_stream_windows_closed_total",
    "Windows sealed by the watermark.",
)
_ALARMS = obs_metrics.counter(
    "repro_stream_alarms_total",
    "Alarms inserted as new rows in the alarm database.",
)
_ALARMS_MERGED = obs_metrics.counter(
    "repro_stream_alarms_merged_total",
    "Alarm re-fires deduplicated into already-stored alarms.",
)
_TRIAGED = obs_metrics.counter(
    "repro_stream_triaged_total",
    "Open alarms triaged against the live ring.",
)
_AUTO_CLOSED = obs_metrics.counter(
    "repro_stream_alarms_auto_closed_total",
    "Alarms auto-resolved as decayed (no re-fire within the "
    "configured window horizon).",
)
_WATERMARK_LAG = obs_metrics.gauge(
    "repro_stream_watermark_lag_seconds",
    "Event-time distance between the stream head and the close "
    "frontier of the next window due to seal.",
)
_SEAL_SECONDS = obs_metrics.histogram(
    "repro_stream_window_seal_seconds",
    "Window close latency: detector close, alarm insert and live "
    "triage for one sealed window.",
)


@dataclass
class WindowResult:
    """Everything one sealed window produced."""

    window: ClosedWindow
    alarms: list[Alarm] = field(default_factory=list)
    #: Alarm ids merged into already-stored alarms by dedup.
    merged: list[str] = field(default_factory=list)
    triage: list[TriageResult] = field(default_factory=list)
    #: Alarm ids auto-resolved as decayed when this window sealed.
    auto_closed: list[str] = field(default_factory=list)


@dataclass
class StreamStats:
    """Counters accumulated over one engine run."""

    chunks: int = 0
    flows: int = 0
    late_dropped: int = 0
    windows_closed: int = 0
    alarms: int = 0
    alarms_merged: int = 0
    triaged: int = 0
    auto_closed: int = 0


class StreamEngine:
    """Continuous ingest, incremental detection and live triage."""

    def __init__(
        self,
        detectors: Iterable[StreamingDetector],
        window_seconds: float = DEFAULT_BIN_SECONDS,
        origin: float | None = None,
        lateness_seconds: float | None = 0.0,
        retain_windows: int = 16,
        alarmdb: AlarmDatabase | None = None,
        dedup_window: float | None = None,
        triage: bool = False,
        auto_close_windows: int | None = None,
        config: SystemConfig | None = None,
        on_window: Callable[[WindowResult], None] | None = None,
        workers: int = 1,
        executor: "ShardExecutor | None" = None,
        archive=None,
    ) -> None:
        """``archive`` (an :class:`~repro.archive.writer.ArchiveWriter`)
        makes the deployment durable: every closed window persists as a
        sealed on-disk partition, so alarms stored in a file-backed
        ``alarmdb`` can be triaged by a *later process* against the
        archive (``ExtractionSystem.from_archive``) even after this
        engine — and its in-RAM ring — is gone.

        ``auto_close_windows`` is the lifecycle decay horizon: when a
        window seals, open/acked alarms whose interval last grew more
        than that many windows ago (dedup merges extend ``end`` on
        every re-fire) are resolved with verdict ``decayed``."""
        self.detectors = list(detectors)
        self.ring = WindowRing(
            window_seconds=window_seconds,
            origin=origin,
            lateness_seconds=lateness_seconds,
            retain_windows=retain_windows,
            archive=archive,
        )
        self.alarmdb = alarmdb or AlarmDatabase()
        self.dedup_window = dedup_window
        if auto_close_windows is not None and auto_close_windows < 1:
            raise ValueError(
                f"auto_close_windows must be >= 1: {auto_close_windows!r}"
            )
        self.auto_close_windows = auto_close_windows
        self.config = config or SystemConfig()
        self.system: ExtractionSystem | None = None
        if triage:
            self.system = ExtractionSystem(
                FlowBackend(
                    store=self.ring.store,
                    baseline_bins=self.config.baseline_bins,
                    pad_bins=self.config.pad_bins,
                ),
                alarmdb=self.alarmdb,
                config=self.config,
                workers=workers,
                executor=executor,
            )
        self.on_window = on_window
        self.stats = StreamStats()
        #: Journal bookkeeping (provenance plane): ``chunk.ingest``
        #: event ids by open-window index, consumed at seal so each
        #: ``window.seal`` event names its source chunks.
        self._window_chunks: dict[int, list[int]] = {}

    # -- the loop ----------------------------------------------------------

    def process(self, chunk: FlowTable) -> list[WindowResult]:
        """Ingest one chunk; returns results of any windows it sealed."""
        ingest = self.ring.ingest(chunk)
        self.stats.chunks += 1
        self.stats.flows += ingest.admitted
        self.stats.late_dropped += ingest.late_dropped
        if obs_metrics.enabled():
            _CHUNKS.inc()
            _FLOWS.inc(ingest.admitted)
            if ingest.late_dropped:
                _LATE_DROPPED.inc(ingest.late_dropped)
            _WATERMARK_LAG.set(self.ring.watermark_lag_seconds)
        if obs_events.enabled():
            routed_windows = sorted(
                index for index, _ in ingest.routed
            )
            chunk_event = obs_events.emit(
                "chunk.ingest",
                seq=self.stats.chunks,
                rows=ingest.admitted,
                late=ingest.late_dropped or None,
                windows=routed_windows or None,
            )
            for index in routed_windows:
                self._window_chunks.setdefault(index, []).append(
                    chunk_event
                )
        for index, rows in ingest.routed:
            self._observe(index, rows)
        return [self._seal(window) for window in self.ring.close_due()]

    def _observe(self, index: int, rows: FlowTable) -> None:
        """Fold one routed sub-chunk into per-window detector state.

        The sharded engine overrides this to bucket rows by shard and
        defer accumulation to window close.
        """
        for detector in self.detectors:
            detector.observe(index, rows)

    def finish(self) -> list[WindowResult]:
        """End of stream: seal every remaining window."""
        return [self._seal(window) for window in self.ring.flush()]

    def run(self, source: Iterable[FlowTable]) -> list[WindowResult]:
        """Drain a chunk source through the engine, then flush."""
        results: list[WindowResult] = []
        for chunk in source:
            results.extend(self.process(chunk))
        results.extend(self.finish())
        return results

    def close(self) -> None:
        """Release resources held for triage (idempotent).

        Long-running deployments with ``workers > 1`` should call this
        (or :meth:`ShardedStreamEngine.close`) when retiring an engine
        so sharded triage worker pools do not outlive it.
        """
        if self.system is not None:
            self.system.close()

    # -- window sealing ----------------------------------------------------

    def _seal(self, window: ClosedWindow) -> WindowResult:
        metered = obs_metrics.enabled()
        started = time.perf_counter() if metered else 0.0
        result = WindowResult(window=window)
        seal_event = None
        if obs_events.enabled():
            seal_event = obs_events.emit(
                "window.seal",
                index=window.index,
                start=window.start,
                end=window.end,
                flows=window.flows,
                chunks=self._window_chunks.pop(window.index, None),
            )
        else:
            self._window_chunks.pop(window.index, None)
        with obs_events.causal(seal_event):
            for detector in self.detectors:
                alarms = list(detector.close(
                    window.index, window.start, window.end
                ))
                verdict_event = None
                if obs_events.enabled():
                    # The verdict precedes the inserts causally: each
                    # alarm.* journal row parents to it.
                    verdict_event = obs_events.emit(
                        "detector.verdict",
                        detector=detector.name,
                        window=window.index,
                        alarms=len(alarms),
                    )
                with obs_events.causal(verdict_event):
                    for alarm in alarms:
                        stored_id = self.alarmdb.insert(
                            alarm, dedup_window=self.dedup_window
                        )
                        if stored_id == alarm.alarm_id:
                            result.alarms.append(alarm)
                            self.stats.alarms += 1
                        else:
                            result.merged.append(stored_id)
                            self.stats.alarms_merged += 1
        self.stats.windows_closed += 1
        if self.auto_close_windows is not None:
            horizon = (
                self.auto_close_windows * self.ring.window_seconds
            )
            result.auto_closed = self.alarmdb.auto_close(
                before=window.end - horizon,
                note=(
                    f"no re-fire within {self.auto_close_windows} "
                    f"windows"
                ),
            )
            self.stats.auto_closed += len(result.auto_closed)
        if self.system is not None \
                and self.alarmdb.count(AlarmStatus.OPEN):
            result.triage = self.system.process_open_alarms(
                skip_errors=True
            )
            self.stats.triaged += len(result.triage)
        if metered:
            _WINDOWS_CLOSED.inc()
            if result.alarms:
                _ALARMS.inc(len(result.alarms))
            if result.merged:
                _ALARMS_MERGED.inc(len(result.merged))
            if result.triage:
                _TRIAGED.inc(len(result.triage))
            if result.auto_closed:
                _AUTO_CLOSED.inc(len(result.auto_closed))
            _SEAL_SECONDS.observe(time.perf_counter() - started)
        logger.debug(
            "sealed window %d [%s, %s): %d alarms, %d merged, "
            "%d triaged",
            window.index,
            window.start,
            window.end,
            len(result.alarms),
            len(result.merged),
            len(result.triage),
        )
        if self.on_window is not None:
            self.on_window(result)
        return result
