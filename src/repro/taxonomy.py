"""Shared anomaly taxonomy.

One vocabulary of anomaly classes used across the library: the synthetic
injectors label their ground truth with it, the extraction classifier
guesses it from itemset evidence, and the evaluation harness compares
the two. Values follow the anomaly types named in the paper (port and
network scans, TCP/UDP DoS and DDoS, point-to-point UDP floods) plus the
benign heavy-hitter classes any backbone sees.
"""

from __future__ import annotations

import enum

__all__ = ["AnomalyKind"]


class AnomalyKind(enum.Enum):
    """Anomaly classes used across the paper's two evaluations."""

    PORT_SCAN = "port scan"
    NETWORK_SCAN = "network scan"
    SYN_FLOOD = "TCP SYN flood"
    UDP_FLOOD = "point-to-point UDP flood"
    REFLECTOR = "reflector attack"
    ALPHA_FLOW = "alpha flow"
    FLASH_CROWD = "flash crowd"
    STEALTHY = "stealthy"
    UNKNOWN = "unknown"
