"""The serve sink: Prometheus text rendering + /metrics + /status.

:func:`render_prometheus` turns the active registry into Prometheus
text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE``
headers from the descriptor table, cumulative ``_bucket{le=...}`` /
``_sum`` / ``_count`` triples for histograms. It is pure — ``repro
obs dump`` prints it one-shot without any server.

:class:`MetricsServer` wraps it in a stdlib
:class:`~http.server.ThreadingHTTPServer` on a daemon thread:

- ``GET /metrics`` — Prometheus text of the active registry;
- ``GET /status``  — JSON: the recent span tail plus whatever the
  owning session's ``status`` callable reports (mode, live stream
  stats, watermark lag).

``Session.run()`` starts one for stream/triage specs that set
``metrics_port`` (port 0 binds an ephemeral port; the bound port is
reported in ``RunResult.payload["metrics_port"]``) and stops it when
the run ends. Nothing here is imported by the hot layers — the
endpoint is strictly an observer of the metrics/trace state.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

from repro.obs import events as obs_events, metrics, trace
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "render_prometheus", "status_payload"]

logger = logging.getLogger(__name__)

CONTENT_TYPE_METRICS = "text/plain; version=0.0.4; charset=utf-8"
CONTENT_TYPE_JSON = "application/json; charset=utf-8"


def _format_value(value: int | float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if value != value:
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def _merge_le(
    labels: tuple[tuple[str, str], ...], bound: str
) -> str:
    pairs = labels + (("le", bound),)
    inner = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def render_prometheus(
    registry: MetricsRegistry | None = None,
) -> str:
    """Prometheus text for ``registry`` (default: active; '' if off)."""
    if registry is None:
        registry = metrics.active()
    if registry is None:
        return ""
    counters = registry.counters()
    gauges = registry.gauges()
    hists = registry.histograms()
    lines: list[str] = []
    for name in sorted(metrics.descriptors()):
        descriptor = metrics.descriptors()[name]
        series_scalars = sorted(
            (key, value)
            for key, value in (
                counters if descriptor.kind == "counter" else gauges
            ).items()
            if key[0] == name
        ) if descriptor.kind in ("counter", "gauge") else []
        series_hists = sorted(
            (key, packed)
            for key, packed in hists.items()
            if key[0] == name
        ) if descriptor.kind == "histogram" else []
        if descriptor.kind == "histogram" and not series_hists:
            continue
        if descriptor.help:
            lines.append(f"# HELP {name} {descriptor.help}")
        lines.append(f"# TYPE {name} {descriptor.kind}")
        if descriptor.kind in ("counter", "gauge"):
            if not series_scalars:
                # Declared but untouched: expose an explicit zero so
                # dashboards see the family before first increment.
                lines.append(f"{name} 0")
            for (_, labels), value in series_scalars:
                lines.append(
                    f"{name}{_render_labels(labels)}"
                    f" {_format_value(value)}"
                )
        else:
            for (_, labels), packed in series_hists:
                buckets, counts, total, count = packed
                cumulative = 0
                for bound, bucket_count in zip(buckets, counts):
                    cumulative += bucket_count
                    lines.append(
                        f"{name}_bucket"
                        f"{_merge_le(labels, _format_value(float(bound)))}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{name}_bucket{_merge_le(labels, '+Inf')} {count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)}"
                    f" {_format_value(total)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def status_payload(
    status: Callable[[], dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """The /status JSON body: span tail + the owner's live status."""
    payload: dict[str, Any] = {
        "run_id": obs_events.run_id(),
        "uptime_seconds": round(obs_events.uptime_seconds(), 3),
        "spans": [
            {"name": name, "seconds": seconds}
            for name, seconds in trace.spans()
        ],
    }
    if status is not None:
        try:
            payload.update(status())
        except Exception as exc:  # pragma: no cover - defensive
            payload["status_error"] = f"{type(exc).__name__}: {exc}"
    return payload


#: A rendered HTTP response: (status code, content type, body,
#: extra headers). ``_get``/``_post`` return one, or ``None`` for 404.
#: The body is normally ``bytes`` (Content-Length framing); a
#: *callable* body streams instead — it is invoked with the socket's
#: write file after the headers go out and frames its own output
#: (the SSE route), with no Content-Length header sent.
Response = tuple[
    int, str, "bytes | Callable[[Any], None]", dict[str, str]
]


class MetricsServer:
    """The /metrics + /status endpoint on a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`. Binds ``host`` (default loopback) only — this is
    an operator-local observability port, not a public listener.

    Subclasses (:class:`repro.obs.console.ConsoleServer`) extend the
    route table by overriding :meth:`_get` / :meth:`_post`, which map
    ``(path, query)`` to a :data:`Response` or ``None`` for 404. The
    base server answers GET and HEAD; POST to any base route is 405.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        status: Callable[[], dict[str, Any]] | None = None,
    ) -> None:
        self._requested = port
        self._host = host
        self._status = status
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None
        #: Set by :meth:`stop` before the listener shuts down so
        #: long-lived streaming handlers (SSE) notice and exit their
        #: write loops instead of pinning the shutdown join.
        self.stopping = threading.Event()

    # ------------------------------------------------------------------
    # Route table
    # ------------------------------------------------------------------

    def _get(self, path: str, query: dict[str, str]) -> Response | None:
        if path == "/metrics":
            body = render_prometheus().encode("utf-8")
            return (
                200,
                CONTENT_TYPE_METRICS,
                body,
                {"Cache-Control": "no-store"},
            )
        if path == "/status":
            body = json.dumps(
                status_payload(self._status), default=str
            ).encode("utf-8")
            return (
                200,
                CONTENT_TYPE_JSON,
                body,
                {"Cache-Control": "no-store"},
            )
        return None

    def _post(
        self, path: str, query: dict[str, str], body: bytes
    ) -> Response | None:
        return None

    def _allows_post(self, path: str) -> bool:
        """True when ``path`` is a POST route (405 for GET, not 404)."""
        return False

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MetricsServer":
        owner = self
        self.stopping.clear()

        class _Handler(BaseHTTPRequestHandler):
            def _parse(self) -> tuple[str, dict[str, str]]:
                path, _, raw_query = self.path.partition("?")
                query = {
                    key: values[-1]
                    for key, values in urllib.parse.parse_qs(
                        raw_query, keep_blank_values=True
                    ).items()
                }
                # EventSource reconnects resume via the Last-Event-ID
                # header; surface it to routes as a query default so
                # the route table stays (path, query) -> Response.
                last_event = self.headers.get("Last-Event-ID")
                if last_event is not None:
                    query.setdefault("last_id", last_event)
                return urllib.parse.unquote(path), query

            def _reply(
                self, response: Response | None, head_only: bool = False
            ) -> None:
                if response is None:
                    self.send_error(404, "unknown path")
                    return
                status, ctype, body, headers = response
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                if not callable(body):
                    self.send_header(
                        "Content-Length", str(len(body))
                    )
                for name, value in headers.items():
                    self.send_header(name, value)
                self.end_headers()
                if head_only:
                    return
                if callable(body):
                    body(self.wfile)
                else:
                    self.wfile.write(body)

            def _run(self, head_only: bool = False) -> None:
                try:
                    path, query = self._parse()
                    if self.command == "POST":
                        length = int(
                            self.headers.get("Content-Length") or 0
                        )
                        payload = (
                            self.rfile.read(length) if length else b""
                        )
                        response = owner._post(path, query, payload)
                        if response is None and (
                            owner._get(path, query) is not None
                        ):
                            response = (
                                405,
                                CONTENT_TYPE_JSON,
                                b'{"error": "method not allowed"}',
                                {"Allow": "GET, HEAD"},
                            )
                    else:
                        response = owner._get(path, query)
                        if response is None and owner._allows_post(path):
                            response = (
                                405,
                                CONTENT_TYPE_JSON,
                                b'{"error": "method not allowed"}',
                                {"Allow": "POST"},
                            )
                    self._reply(response, head_only=head_only)
                except (BrokenPipeError, ConnectionResetError):
                    # Scraper hung up mid-response; nothing to salvage.
                    logger.debug("client disconnected mid-response")
                except Exception as exc:
                    # A route bug must degrade to a JSON 500, not a
                    # dropped connection killing the poller.
                    logger.exception("endpoint error on %s", self.path)
                    try:
                        self._reply((
                            500,
                            CONTENT_TYPE_JSON,
                            json.dumps({
                                "error":
                                    f"{type(exc).__name__}: {exc}",
                            }).encode("utf-8"),
                            {},
                        ), head_only=head_only)
                    except (BrokenPipeError, ConnectionResetError,
                            OSError):
                        pass

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                self._run()

            def do_HEAD(self) -> None:  # noqa: N802 (http.server API)
                self._run(head_only=True)

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                self._run()

            def log_message(self, format: str, *args) -> None:
                logger.debug(
                    "metrics endpoint: " + format, *args
                )

        self._server = ThreadingHTTPServer(
            (self._host, self._requested), _Handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-serve",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "serving /metrics and /status on http://%s:%d",
            self._host,
            self.port,
        )
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self.stopping.set()
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        logger.info("metrics endpoint on port %s stopped", self.port)
        self._server = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
