"""Lightweight span timing: ``with trace.span("detect.window"):``.

Spans are wall-clock phase timers feeding a bounded in-memory log.
They are deliberately *not* gated on the metrics registry: a span
fires once per pipeline phase (load / train / detect / a window
seal), so one ``perf_counter`` pair and a deque append are free at
that granularity, and the session facade needs the durations
unconditionally — ``RunResult.timings`` is fed straight from spans
via the ``timings=/key=`` hooks, replacing the hand-rolled
``perf_counter`` blocks it used to carry (keys byte-identical,
equivalence-tested).

Every span also carries causal identity: a 16-hex ``trace_id``
shared by a whole causally-linked tree, its own 16-hex ``span_id``,
and its parent's span id (from an ambient ``contextvars`` context, so
nesting needs no plumbing). The context serializes through
:func:`task_context` / :func:`capture` — the hooks
``repro.parallel.executor`` uses to make worker-side spans children
of the dispatching parent span and ship them back with the
``(result, delta)`` metric seam (:func:`adopt`). :func:`chrome_trace`
renders the whole log — parent and worker lanes alike, keyed by the
recorded pid/tid — as Chrome trace-event JSON loadable in Perfetto.

The log is a process-global deque bounded at 512 records by default;
:func:`configure` resizes it (``SinkSpec.span_log`` is the spec-level
knob). Old spans fall off, memory stays bounded on long-running
stream sessions, and the serve endpoint's ``/status`` JSON reports
the recent tail.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from typing import Any, Iterable, MutableMapping

__all__ = [
    "Span",
    "SpanRecord",
    "adopt",
    "capture",
    "chrome_trace",
    "clear",
    "configure",
    "drain",
    "log_limit",
    "records",
    "span",
    "spans",
    "task_context",
]

#: Default bound of the completed-span history.
DEFAULT_LOG_LIMIT = 512

_LOG_LIMIT = DEFAULT_LOG_LIMIT
_LOG: "deque[SpanRecord]" = deque(maxlen=_LOG_LIMIT)
_LOCK = threading.Lock()

#: Ambient span context: ``(trace_id, span_id)`` of the innermost
#: open span, or ``None`` outside any span.
_CONTEXT: ContextVar[tuple[str, str] | None] = ContextVar(
    "repro_span_context", default=None
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class SpanRecord:
    """One completed span: timing plus causal identity.

    Plain data, serialized as an 8-tuple (:meth:`pack` /
    :meth:`unpack`) so worker processes ship span batches through the
    pool pipe without pickling class state.
    """

    __slots__ = (
        "name", "seconds", "start", "trace_id", "span_id",
        "parent_id", "pid", "tid",
    )

    def __init__(
        self,
        name: str,
        seconds: float,
        start: float,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        pid: int,
        tid: int,
    ) -> None:
        self.name = name
        self.seconds = seconds
        self.start = start
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.pid = pid
        self.tid = tid

    def pack(self) -> tuple:
        return (
            self.name, self.seconds, self.start, self.trace_id,
            self.span_id, self.parent_id, self.pid, self.tid,
        )

    @classmethod
    def unpack(cls, packed: tuple) -> "SpanRecord":
        return cls(*packed)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": self.seconds,
            "start": self.start,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out


class Span:
    """One timed phase; use via the :func:`span` context manager.

    ``seconds`` is valid after ``__exit__`` (and keeps the partial
    elapsed time mid-flight via :meth:`elapsed`). When ``timings``
    is given, the duration is also written into that mapping under
    ``key`` (default: the span name) — the seam the session facade
    uses to keep ``RunResult.timings`` unchanged. On entry the span
    joins the ambient trace (inheriting ``trace_id`` and parenting to
    the innermost open span) or starts a fresh trace at top level.
    """

    __slots__ = (
        "name", "seconds", "trace_id", "span_id", "parent_id",
        "_timings", "_key", "_started", "_wall", "_token",
    )

    def __init__(
        self,
        name: str,
        timings: MutableMapping[str, float] | None = None,
        key: str | None = None,
    ) -> None:
        self.name = name
        self.seconds = 0.0
        self.trace_id = ""
        self.span_id = ""
        self.parent_id: str | None = None
        self._timings = timings
        self._key = key if key is not None else name
        self._started = 0.0
        self._wall = 0.0
        self._token = None

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def __enter__(self) -> "Span":
        ambient = _CONTEXT.get()
        if ambient is None:
            self.trace_id = _new_id()
            self.parent_id = None
        else:
            self.trace_id, self.parent_id = ambient
        self.span_id = _new_id()
        self._token = _CONTEXT.set((self.trace_id, self.span_id))
        self._wall = time.time()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._started
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
        record = SpanRecord(
            self.name,
            self.seconds,
            self._wall,
            self.trace_id,
            self.span_id,
            self.parent_id,
            os.getpid(),
            threading.get_ident(),
        )
        with _LOCK:
            _LOG.append(record)
        if self._timings is not None:
            self._timings[self._key] = self.seconds
        return False


def span(
    name: str,
    timings: MutableMapping[str, float] | None = None,
    key: str | None = None,
) -> Span:
    """A context manager timing one named phase into the span log."""
    return Span(name, timings=timings, key=key)


def spans() -> list[tuple[str, float]]:
    """The recent span tail, oldest first: ``[(name, seconds), ...]``."""
    with _LOCK:
        return [(record.name, record.seconds) for record in _LOG]


def records() -> list[SpanRecord]:
    """The recent span tail with full causal identity, oldest first."""
    with _LOCK:
        return list(_LOG)


def clear() -> None:
    """Drop recorded spans (test isolation)."""
    with _LOCK:
        _LOG.clear()


def configure(limit: int | None = None) -> int:
    """Resize the span-log bound (``None`` keeps it); returns it.

    Shrinking keeps the newest records. The default (512) is
    unchanged unless a spec (``SinkSpec.span_log``) says otherwise.
    """
    global _LOG, _LOG_LIMIT
    if limit is not None:
        if limit < 1:
            raise ValueError(f"span log limit must be >= 1: {limit!r}")
        with _LOCK:
            if limit != _LOG_LIMIT:
                _LOG_LIMIT = limit
                _LOG = deque(_LOG, maxlen=limit)
    return _LOG_LIMIT


def log_limit() -> int:
    """The current span-log bound."""
    return _LOG_LIMIT


# -- cross-process propagation ----------------------------------------------


def task_context() -> tuple[str, str] | None:
    """The ambient ``(trace_id, span_id)`` to ship with a task."""
    return _CONTEXT.get()


def capture(context: tuple[str, str] | None):
    """Begin worker-side capture: fresh log, inherited context.

    Installs an empty span log (a forked worker inherits the parent's
    history, which must not ship back twice) and makes ``context``
    the ambient parent so task spans join the dispatching trace.
    Returns an opaque handle for :func:`drain`.
    """
    global _LOG
    token = _CONTEXT.set(context)
    with _LOCK:
        previous = _LOG
        _LOG = deque(maxlen=_LOG_LIMIT)
    return token, previous


def drain(handle) -> list[tuple]:
    """End worker-side capture; returns packed captured records."""
    global _LOG
    token, previous = handle
    _CONTEXT.reset(token)
    with _LOCK:
        captured = list(_LOG)
        _LOG = previous
    return [record.pack() for record in captured]


def adopt(packed: Iterable[tuple]) -> None:
    """Fold worker-shipped span records into this process's log."""
    with _LOCK:
        for item in packed:
            _LOG.append(SpanRecord.unpack(item))


# -- Chrome trace-event export ----------------------------------------------


def chrome_trace(
    source: Iterable[SpanRecord] | None = None,
) -> dict[str, Any]:
    """The span log as a Chrome trace-event document (Perfetto-ready).

    Complete spans render as ``ph: "X"`` duration events with
    microsecond wall-clock timestamps; worker-side spans keep their
    recording pid/tid, so Perfetto lays each process out as its own
    lane. Causal identity rides in ``args``.
    """
    if source is None:
        source = records()
    events = []
    for record in sorted(source, key=lambda r: r.start):
        args: dict[str, Any] = {
            "trace_id": record.trace_id,
            "span_id": record.span_id,
        }
        if record.parent_id is not None:
            args["parent_id"] = record.parent_id
        events.append({
            "name": record.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(record.start * 1e6, 3),
            "dur": round(record.seconds * 1e6, 3),
            "pid": record.pid,
            "tid": record.tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}
