"""Lightweight span timing: ``with trace.span("detect.window"):``.

Spans are wall-clock phase timers feeding a bounded in-memory log.
They are deliberately *not* gated on the metrics registry: a span
fires once per pipeline phase (load / train / detect / a window
seal), so one ``perf_counter`` pair and a deque append are free at
that granularity, and the session facade needs the durations
unconditionally — ``RunResult.timings`` is fed straight from spans
via the ``timings=/key=`` hooks, replacing the hand-rolled
``perf_counter`` blocks it used to carry (keys byte-identical,
equivalence-tested).

The log is a process-global ``deque(maxlen=512)``: old spans fall
off, memory stays bounded on long-running stream sessions, and the
serve endpoint's ``/status`` JSON reports the recent tail.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import MutableMapping

__all__ = ["Span", "clear", "span", "spans"]

#: Bounded history of completed spans, oldest first.
_LOG_LIMIT = 512
_LOG: deque[tuple[str, float]] = deque(maxlen=_LOG_LIMIT)
_LOCK = threading.Lock()


class Span:
    """One timed phase; use via the :func:`span` context manager.

    ``seconds`` is valid after ``__exit__`` (and keeps the partial
    elapsed time mid-flight via :meth:`elapsed`). When ``timings``
    is given, the duration is also written into that mapping under
    ``key`` (default: the span name) — the seam the session facade
    uses to keep ``RunResult.timings`` unchanged.
    """

    __slots__ = ("name", "seconds", "_timings", "_key", "_started")

    def __init__(
        self,
        name: str,
        timings: MutableMapping[str, float] | None = None,
        key: str | None = None,
    ) -> None:
        self.name = name
        self.seconds = 0.0
        self._timings = timings
        self._key = key if key is not None else name
        self._started = 0.0

    def elapsed(self) -> float:
        return time.perf_counter() - self._started

    def __enter__(self) -> "Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._started
        with _LOCK:
            _LOG.append((self.name, self.seconds))
        if self._timings is not None:
            self._timings[self._key] = self.seconds
        return False


def span(
    name: str,
    timings: MutableMapping[str, float] | None = None,
    key: str | None = None,
) -> Span:
    """A context manager timing one named phase into the span log."""
    return Span(name, timings=timings, key=key)


def spans() -> list[tuple[str, float]]:
    """The recent span tail, oldest first: ``[(name, seconds), ...]``."""
    with _LOCK:
        return list(_LOG)


def clear() -> None:
    """Drop recorded spans (test isolation)."""
    with _LOCK:
        _LOG.clear()
