"""The embedded operator dashboard page.

One self-contained HTML document (no external assets, no JS
dependencies) served by :class:`repro.obs.console.ConsoleServer` at
``/`` and ``/dashboard``. It subscribes to the console's event
stream (``EventSource`` on ``/api/events/stream``) and refreshes on
push — any pipeline lifecycle event triggers a debounced re-fetch of
``/metrics`` (Prometheus text, parsed with a regex) and
``/api/alarms``. When the stream is unavailable (no journal active,
proxy strips SSE) it falls back to the PR 7 behavior: polling the
same endpoints every two seconds. Rendered either way:

- stat tiles: live flows/s (derived from successive
  ``repro_flows_ingested_total`` samples), watermark lag, windows
  sealed, and the open-alarm count;
- per-state alarm counts as labelled status chips (color is always
  paired with the state name — never color alone);
- a triage queue of actionable alarms with Ack / Dismiss buttons
  that POST to ``/api/alarms/<id>/<action>``.

Embedding the page as a module constant keeps packaging trivial:
no package-data, no MANIFEST entries, and ``repro serve`` works from
a zip import.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro console</title>
<meta name="viewport" content="width=device-width, initial-scale=1">
<style>
  :root {
    --ink: #1a1a1a; --ink-2: #555; --ink-3: #8a8a8a;
    --surface: #fafaf8; --card: #ffffff; --line: #e4e2de;
    --good: #0ca30c; --warning: #fab219;
    --serious: #ec835a; --critical: #d03b3b;
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; background: var(--surface); color: var(--ink);
    font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 12px;
    padding: 14px 24px; border-bottom: 1px solid var(--line);
    background: var(--card);
  }
  header h1 { font-size: 16px; margin: 0; font-weight: 650; }
  header .sub { color: var(--ink-3); font-size: 12px; }
  main { max-width: 1080px; margin: 0 auto; padding: 20px 24px; }
  .tiles {
    display: grid; gap: 12px;
    grid-template-columns: repeat(auto-fit, minmax(190px, 1fr));
  }
  .tile {
    background: var(--card); border: 1px solid var(--line);
    border-radius: 8px; padding: 14px 16px;
  }
  .tile .label {
    font-size: 11px; letter-spacing: .04em; text-transform: uppercase;
    color: var(--ink-3); margin-bottom: 4px;
  }
  .tile .value {
    font-size: 26px; font-weight: 650;
    font-variant-numeric: tabular-nums;
  }
  .tile .unit { font-size: 13px; color: var(--ink-2); font-weight: 400; }
  h2 { font-size: 13px; margin: 26px 0 10px; color: var(--ink-2);
       text-transform: uppercase; letter-spacing: .05em; }
  .chips { display: flex; flex-wrap: wrap; gap: 8px; }
  .chip {
    display: inline-flex; align-items: center; gap: 7px;
    background: var(--card); border: 1px solid var(--line);
    border-radius: 999px; padding: 4px 12px; font-size: 13px;
  }
  .chip .dot {
    width: 9px; height: 9px; border-radius: 50%; background: var(--ink-3);
  }
  .chip .n { font-weight: 650; font-variant-numeric: tabular-nums; }
  table {
    width: 100%; border-collapse: collapse; background: var(--card);
    border: 1px solid var(--line); border-radius: 8px; overflow: hidden;
  }
  th, td {
    text-align: left; padding: 8px 12px;
    border-bottom: 1px solid var(--line); font-size: 13px;
  }
  th { color: var(--ink-3); font-weight: 550; font-size: 11px;
       text-transform: uppercase; letter-spacing: .04em; }
  tr:last-child td { border-bottom: none; }
  td.num { font-variant-numeric: tabular-nums; }
  .state { display: inline-flex; align-items: center; gap: 6px; }
  .state .dot { width: 8px; height: 8px; border-radius: 50%; }
  button {
    font: inherit; font-size: 12px; padding: 3px 10px; margin-right: 6px;
    border: 1px solid var(--line); border-radius: 6px;
    background: var(--card); color: var(--ink); cursor: pointer;
  }
  button:hover { background: var(--surface); }
  #err { color: var(--critical); font-size: 12px; min-height: 1.2em;
         margin-top: 14px; }
  .empty { color: var(--ink-3); padding: 14px; text-align: center; }
</style>
</head>
<body>
<header>
  <h1>repro console</h1>
  <span class="sub" id="meta">connecting&hellip;</span>
  <span class="sub" id="collector"></span>
</header>
<main>
  <div class="tiles">
    <div class="tile"><div class="label">Flows / s</div>
      <div class="value" id="t-rate">&ndash;</div></div>
    <div class="tile"><div class="label">Watermark lag</div>
      <div class="value" id="t-lag">&ndash;<span class="unit"> s</span></div></div>
    <div class="tile"><div class="label">Windows sealed</div>
      <div class="value" id="t-windows">&ndash;</div></div>
    <div class="tile"><div class="label">Open alarms</div>
      <div class="value" id="t-open">&ndash;</div></div>
  </div>
  <h2>Alarms by state</h2>
  <div class="chips" id="chips"></div>
  <h2>Triage queue</h2>
  <table>
    <thead><tr>
      <th>Alarm</th><th>Detector</th><th>Window</th><th>Score</th>
      <th>Label</th><th>State</th><th>Actions</th>
    </tr></thead>
    <tbody id="queue"><tr><td class="empty" colspan="7">loading&hellip;</td></tr></tbody>
  </table>
  <div id="err"></div>
</main>
<script>
"use strict";
// Reserved status palette; a colored dot is always paired with the
// state name in text, so color is never the only carrier.
const STATE_COLOR = {
  open: "var(--critical)", escalated: "var(--serious)",
  acked: "var(--warning)", assigned: "var(--warning)",
  extracted: "var(--ink-3)", validated: "var(--ink-3)",
  resolved: "var(--good)", dismissed: "var(--good)",
};
const ACTIONABLE = ["open", "acked", "assigned", "escalated", "validated"];
const POLL_MS = 2000;            // fallback cadence when SSE is down
const REFRESH_DEBOUNCE_MS = 250; // coalesce event bursts into one fetch
let lastFlows = null, lastFlowsAt = null;
let pollTimer = null, refreshTimer = null, live = false;

function metric(text, name) {
  const re = new RegExp("^" + name + "(?:\\\\{[^}]*\\\\})? (.+)$", "m");
  const m = text.match(re);
  return m ? parseFloat(m[1]) : null;
}

function fmt(v, digits) {
  if (v === null || v === undefined || Number.isNaN(v)) return "\\u2013";
  return v.toLocaleString("en-US", {maximumFractionDigits: digits ?? 0});
}

async function pollMetrics() {
  const text = await (await fetch("/metrics", {cache: "no-store"})).text();
  const now = performance.now();
  const flows = metric(text, "repro_flows_ingested_total");
  let rate = null;
  if (flows !== null && lastFlows !== null && now > lastFlowsAt) {
    rate = Math.max(0, flows - lastFlows) / ((now - lastFlowsAt) / 1000);
  }
  lastFlows = flows; lastFlowsAt = now;
  document.getElementById("t-rate").textContent = fmt(rate);
  const lag = metric(text, "repro_stream_watermark_lag_seconds");
  document.getElementById("t-lag").innerHTML =
    fmt(lag, 1) + '<span class="unit"> s</span>';
  document.getElementById("t-windows").textContent =
    fmt(metric(text, "repro_stream_windows_closed_total"));
  // Collector header line: only rendered once the UDP listener has
  // heard at least one datagram (file-based runs keep a clean header).
  const datagrams = metric(text, "repro_collector_datagrams_total");
  if (datagrams !== null && datagrams > 0) {
    const dropped =
      (metric(text, "repro_collector_datagrams_dropped_total") || 0)
      + (metric(text, "repro_collector_flows_dropped_total") || 0);
    document.getElementById("collector").textContent =
      "collector: " + fmt(metric(text, "repro_collector_exporters"))
      + " exporters \\u00b7 "
      + fmt(metric(text, "repro_collector_flows_total"))
      + " flows \\u00b7 " + fmt(dropped) + " dropped";
  }
}

function stateCell(state) {
  const color = STATE_COLOR[state] || "var(--ink-3)";
  return '<span class="state"><span class="dot" style="background:'
    + color + '"></span>' + state + "</span>";
}

async function act(id, action) {
  try {
    const r = await fetch("/api/alarms/" + encodeURIComponent(id)
      + "/" + action, {method: "POST"});
    if (!r.ok) {
      const body = await r.json().catch(() => ({}));
      throw new Error(body.error || (r.status + " " + r.statusText));
    }
    document.getElementById("err").textContent = "";
  } catch (e) {
    document.getElementById("err").textContent =
      action + " " + id + " failed: " + e.message;
  }
  await pollAlarms();
}

async function pollAlarms() {
  const data = await (await fetch("/api/alarms?limit=50",
    {cache: "no-store"})).json();
  const counts = data.counts || {};
  document.getElementById("t-open").textContent = fmt(counts.open ?? 0);
  const chips = Object.entries(counts).map(([state, n]) => {
    const color = STATE_COLOR[state] || "var(--ink-3)";
    return '<span class="chip"><span class="dot" style="background:'
      + color + '"></span>' + state
      + ' <span class="n">' + fmt(n) + "</span></span>";
  });
  document.getElementById("chips").innerHTML = chips.join("");
  const rows = (data.alarms || [])
    .filter(a => ACTIONABLE.includes(a.status));
  const body = rows.length ? rows.map(a =>
    "<tr><td>" + a.alarm_id + "</td><td>" + a.detector
    + '</td><td class="num">[' + a.start + ", " + a.end + ")</td>"
    + '<td class="num">' + fmt(a.score, 2) + "</td>"
    + "<td>" + (a.label || "") + "</td>"
    + "<td>" + stateCell(a.status) + "</td>"
    + "<td><button onclick=\\"act('" + a.alarm_id + "', 'ack')\\">Ack</button>"
    + "<button onclick=\\"act('" + a.alarm_id + "', 'dismiss')\\">Dismiss"
    + "</button></td></tr>").join("")
    : '<tr><td class="empty" colspan="7">no actionable alarms</td></tr>';
  document.getElementById("queue").innerHTML = body;
  document.getElementById("meta").textContent =
    data.total + " alarms \\u00b7 "
    + (live ? "live" : "polling") + " \\u00b7 refreshed "
    + new Date().toLocaleTimeString();
}

async function tick() {
  try {
    await Promise.all([pollMetrics(), pollAlarms()]);
  } catch (e) {
    document.getElementById("meta").textContent = "poll failed: " + e.message;
  }
}

// Push-first refresh: the event stream announces lifecycle activity
// (window sealed, alarm moved, partition written) and we re-fetch on
// a short debounce. Polling is strictly the fallback — it runs until
// the stream opens and resumes whenever the stream errors
// (EventSource reconnects on its own, carrying Last-Event-ID).
function scheduleRefresh() {
  if (refreshTimer) return;
  refreshTimer = setTimeout(() => { refreshTimer = null; tick(); },
    REFRESH_DEBOUNCE_MS);
}

function startPolling() {
  if (!pollTimer) pollTimer = setInterval(tick, POLL_MS);
}

function stopPolling() {
  if (pollTimer) { clearInterval(pollTimer); pollTimer = null; }
}

function connectEvents() {
  if (typeof EventSource === "undefined") { startPolling(); return; }
  const source = new EventSource("/api/events/stream");
  source.onopen = () => { live = true; stopPolling(); };
  source.onmessage = scheduleRefresh;
  source.onerror = () => { live = false; startPolling(); };
}

tick();
startPolling();
connectEvents();
</script>
</body>
</html>
"""
