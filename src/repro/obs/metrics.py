"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **No-op by default.** Instruments live at module scope in the hot
   layers (``_FLOWS = metrics.counter(...)`` next to the code that
   increments them). Until :func:`enable` installs a registry, every
   record method is one global load and a ``None`` check — no locks,
   no dict lookups, no allocation — so instrumented code paths cost
   within noise of uninstrumented ones (bench-guarded at <= 2%).
2. **Snapshot/merge seam.** A registry serializes to a plain dict of
   builtins (:meth:`MetricsRegistry.snapshot`) and folds another
   snapshot in with :meth:`MetricsRegistry.merge`. Counters and
   histogram bucket counts are integers and merge by addition —
   associative and commutative, so per-shard deltas merged in any
   order equal the serial run exactly (Hypothesis-asserted); gauges
   merge by max (also order-free); histogram sums are float additions
   and are order-free only up to rounding. This is the same merge
   discipline as the streaming ``WindowAccumulator``.
3. **Swappable current registry.** :func:`install` atomically swaps
   the active registry and returns the previous one. Shard workers
   use this to capture a per-task delta: install a fresh registry,
   run the task, restore, and ship ``local.snapshot()`` back with the
   result for the parent to :func:`merge` (see
   ``repro.parallel.executor``).

Naming scheme (the telemetry contract, ARCHITECTURE.md):
``repro_<subsystem>_<quantity>_<unit>``; counters end in ``_total``,
gauges and histogram families name their unit (``_seconds``,
``_bytes``). Instruments self-describe at creation time so the
Prometheus renderer can emit ``# HELP`` / ``# TYPE`` headers.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterator, Mapping

from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "counter",
    "describe",
    "descriptors",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "histogram",
    "install",
    "snapshot",
]

#: A series key: ``(metric name, ((label, value), ...))`` — hashable,
#: picklable, and sorted by label name so equal label sets collide.
Key = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram buckets for sub-second latencies (upper bounds
#: in seconds; +Inf overflow is implicit).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Descriptor:
    """Immutable metadata for one metric family (HELP/TYPE/buckets)."""

    __slots__ = ("name", "kind", "help", "buckets")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets


#: Every metric family ever declared in this process, by name. Global
#: and append-only: redeclaring with identical shape is a no-op (so
#: module reloads are safe), redeclaring with a different shape is a
#: programming error.
_DESCRIPTORS: dict[str, Descriptor] = {}

#: The active registry, or ``None`` when telemetry is disabled. The
#: single global every record method checks.
_REGISTRY: "MetricsRegistry | None" = None


def describe(
    name: str,
    kind: str,
    help: str,
    buckets: tuple[float, ...] | None = None,
) -> Descriptor:
    """Register family metadata; idempotent for an identical shape."""
    existing = _DESCRIPTORS.get(name)
    if existing is not None:
        if existing.kind != kind or existing.buckets != buckets:
            raise ReproError(
                f"metric {name!r} redeclared as {kind} "
                f"(was {existing.kind})"
            )
        return existing
    descriptor = Descriptor(name, kind, help, buckets)
    _DESCRIPTORS[name] = descriptor
    return descriptor


def descriptors() -> dict[str, Descriptor]:
    """All families declared so far (renderer input); live mapping."""
    return _DESCRIPTORS


def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
    return tuple(
        (name, str(value)) for name, value in sorted(labels.items())
    )


class Counter:
    """Monotonic counter handle; stateless, safe to share."""

    __slots__ = ("_key",)

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self._key: Key = (name, labels)

    @property
    def name(self) -> str:
        return self._key[0]

    def labels(self, **labels: object) -> "Counter":
        """A child handle bound to a label set (pre-create, reuse)."""
        return Counter(self._key[0], _label_key(labels))

    def inc(self, amount: int | float = 1) -> None:
        registry = _REGISTRY
        if registry is not None:
            registry.inc(self._key, amount)


class Gauge:
    """Point-in-time value handle (last set wins; merge takes max)."""

    __slots__ = ("_key",)

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self._key: Key = (name, labels)

    @property
    def name(self) -> str:
        return self._key[0]

    def labels(self, **labels: object) -> "Gauge":
        return Gauge(self._key[0], _label_key(labels))

    def set(self, value: int | float) -> None:
        registry = _REGISTRY
        if registry is not None:
            registry.set(self._key, value)


class Histogram:
    """Fixed-bucket histogram handle; bucket bounds ride on the handle."""

    __slots__ = ("_key", "_buckets")

    def __init__(
        self,
        name: str,
        buckets: tuple[float, ...],
        labels: tuple = (),
    ) -> None:
        self._key: Key = (name, labels)
        self._buckets = buckets

    @property
    def name(self) -> str:
        return self._key[0]

    @property
    def buckets(self) -> tuple[float, ...]:
        return self._buckets

    def labels(self, **labels: object) -> "Histogram":
        return Histogram(
            self._key[0], self._buckets, _label_key(labels)
        )

    def observe(self, value: float) -> None:
        registry = _REGISTRY
        if registry is not None:
            registry.observe(self._key, self._buckets, value)


def counter(name: str, help: str = "") -> Counter:
    """Declare a counter family and return its unlabeled handle."""
    describe(name, "counter", help)
    return Counter(name)


def gauge(name: str, help: str = "") -> Gauge:
    """Declare a gauge family and return its unlabeled handle."""
    describe(name, "gauge", help)
    return Gauge(name)


def histogram(
    name: str,
    help: str = "",
    buckets: tuple[float, ...] = LATENCY_BUCKETS,
) -> Histogram:
    """Declare a histogram family and return its unlabeled handle."""
    bounds = tuple(float(bound) for bound in buckets)
    if not bounds or any(
        b <= a for a, b in zip(bounds, bounds[1:])
    ):
        raise ReproError(
            f"histogram {name!r} buckets must be non-empty and "
            f"strictly increasing: {buckets!r}"
        )
    describe(name, "histogram", help, bounds)
    return Histogram(name, bounds)


class _HistState:
    """Mutable per-series histogram state inside a registry."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        # One slot per bound plus the +Inf overflow; non-cumulative
        # here, cumulated only at render time.
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # ``le`` is inclusive: first bound >= value takes the sample.
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """A bag of metric series; snapshot/merge is the IPC seam.

    Mutation methods take the lock — registries are shared between
    the pipeline thread and the serve endpoint's handler threads, and
    one uncontended lock per *chunk-grained* increment is well inside
    the overhead budget (the hot loops record per chunk/window/task,
    never per flow row).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[Key, int | float] = {}
        self._gauges: dict[Key, int | float] = {}
        self._hists: dict[Key, _HistState] = {}

    # -- recording ---------------------------------------------------------

    def inc(self, key: Key, amount: int | float) -> None:
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def set(self, key: Key, value: int | float) -> None:
        with self._lock:
            self._gauges[key] = value

    def observe(
        self, key: Key, buckets: tuple[float, ...], value: float
    ) -> None:
        with self._lock:
            state = self._hists.get(key)
            if state is None:
                state = self._hists[key] = _HistState(buckets)
            state.observe(value)

    # -- reading -----------------------------------------------------------

    def counters(self) -> dict[Key, int | float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> dict[Key, int | float]:
        with self._lock:
            return dict(self._gauges)

    def histograms(
        self,
    ) -> dict[Key, tuple[tuple[float, ...], list[int], float, int]]:
        with self._lock:
            return {
                key: (
                    state.buckets,
                    list(state.counts),
                    state.total,
                    state.count,
                )
                for key, state in self._hists.items()
            }

    def value(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> int | float:
        """One scalar series (tests/CLI convenience); 0 if unset."""
        key: Key = (name, _label_key(labels or {}))
        with self._lock:
            if key in self._counters:
                return self._counters[key]
            return self._gauges.get(key, 0)

    # -- the IPC seam ------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A picklable delta: plain builtins, empty sections omitted."""
        with self._lock:
            out: dict[str, Any] = {}
            if self._counters:
                out["counters"] = dict(self._counters)
            if self._gauges:
                out["gauges"] = dict(self._gauges)
            if self._hists:
                out["histograms"] = {
                    key: (
                        state.buckets,
                        tuple(state.counts),
                        state.total,
                        state.count,
                    )
                    for key, state in self._hists.items()
                }
            return out

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a snapshot in: counters/buckets add, gauges take max.

        Integer addition is associative and commutative, so merging
        per-shard deltas in any order reproduces the serial counts
        exactly; histogram ``sum`` is a float total and is order-free
        only up to rounding.
        """
        with self._lock:
            for key, value in delta.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0) + value
            for key, value in delta.get("gauges", {}).items():
                current = self._gauges.get(key)
                if current is None or value > current:
                    self._gauges[key] = value
            for key, packed in delta.get("histograms", {}).items():
                buckets, counts, total, count = packed
                state = self._hists.get(key)
                if state is None:
                    state = self._hists[key] = _HistState(
                        tuple(buckets)
                    )
                elif state.buckets != tuple(buckets):
                    raise ReproError(
                        f"histogram {key[0]!r} bucket layout mismatch "
                        f"on merge"
                    )
                for index, bump in enumerate(counts):
                    state.counts[index] += bump
                state.total += total
                state.count += count


# -- module-level switchboard ----------------------------------------------


def active() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when telemetry is off."""
    return _REGISTRY


def enabled() -> bool:
    return _REGISTRY is not None


def enable(
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Turn telemetry on; keeps an already-installed registry unless
    an explicit one is given. Sticky for the process."""
    global _REGISTRY
    if registry is not None:
        _REGISTRY = registry
    elif _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Back to no-op instruments (the default state)."""
    global _REGISTRY
    _REGISTRY = None


def install(
    registry: MetricsRegistry | None,
) -> MetricsRegistry | None:
    """Swap the active registry, returning the previous one.

    The worker-delta idiom::

        local = MetricsRegistry()
        previous = install(local)
        try:
            result = task()
        finally:
            install(previous)
        ship(result, local.snapshot())
    """
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def snapshot() -> dict[str, Any]:
    """Snapshot of the active registry ({} when disabled)."""
    registry = _REGISTRY
    return {} if registry is None else registry.snapshot()


def iter_series(
    registry: MetricsRegistry, name: str
) -> Iterator[tuple[Key, Any]]:
    """All series of one family, scalars and histograms alike."""
    for key, value in registry.counters().items():
        if key[0] == name:
            yield key, value
    for key, value in registry.gauges().items():
        if key[0] == name:
            yield key, value
    for key, packed in registry.histograms().items():
        if key[0] == name:
            yield key, packed
