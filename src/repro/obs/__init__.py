"""repro.obs — the telemetry plane: metrics, spans, events, serve sink.

Four small stdlib-only modules:

- :mod:`repro.obs.metrics` — a process-wide registry of named
  counters, gauges and fixed-bucket histograms. Disabled by default:
  instrument handles are module-level constants whose record methods
  are a single ``None`` check until :func:`repro.obs.metrics.enable`
  installs a registry, so the hot layers (stream ingest, shm staging,
  archive scans, mining) carry their instrumentation at near-zero
  cost. Registries snapshot to plain picklable dicts and merge by
  counter addition — the same associative/commutative discipline as
  the streaming ``WindowAccumulator`` — so shard workers accumulate
  into a private registry and the ``ShardExecutor`` folds their
  deltas into the parent alongside task results.
- :mod:`repro.obs.trace` — ``with trace.span("detect.window"):``
  lightweight span timing into a bounded in-memory log; the session
  facade's ``RunResult.timings`` is fed from these spans. Spans carry
  ``trace_id``/``span_id`` causal identity that propagates through
  the shard pool and exports as Chrome trace-event JSON.
- :mod:`repro.obs.events` — the provenance plane: an append-only
  rotated JSONL journal of the pipeline lifecycle (chunk → window →
  shard task → verdict → alarm → archive), with causal ``parent``
  links, a live tail for the console's SSE stream, a crash flight
  recorder, and ``lineage()`` walking an alarm back to its chunks.
- :mod:`repro.obs.serve` — Prometheus text rendering plus an
  ``http.server``-based endpoint (``/metrics`` and ``/status``)
  started by ``Session.run()`` when a spec sets ``metrics_port``.

Import discipline: ``repro.obs`` depends only on the stdlib and
:mod:`repro.errors`, so every layer of the system may import it
without cycles.
"""

from __future__ import annotations

from repro.obs import events, metrics, trace
from repro.obs.events import EventJournal
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "EventJournal",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "events",
    "metrics",
    "trace",
]
