"""The provenance plane: an append-only structured event journal.

Where :mod:`repro.obs.metrics` answers *how much* and
:mod:`repro.obs.trace` answers *how long*, this module answers **why**:
every causally significant pipeline step — chunk ingested, window
sealed, shard task dispatched/folded, detector verdict, alarm
inserted/merged/transitioned, archive partition sealed/quarantined,
planner query — lands as one JSON line in a rotated journal, and
``repro obs lineage <alarm-id>`` walks the links back from an alarm to
the chunks that caused it.

Design constraints, in order:

1. **No-op by default.** Exactly like the metrics plane: hot layers
   call :func:`emit` through a module-global that is ``None`` until a
   journal is installed, so an un-journaled run pays one global load
   and a ``None`` check per *lifecycle step* (chunk/window grained,
   never per flow row) — inside the bench-guarded <= 2% obs budget.
2. **Crash safety by construction.** Records append as complete JSON
   lines, batched to disk on a small bound (every
   ``flush_events`` records or ``flush_seconds`` of wall clock,
   whichever first — serialization stays off the hot path, which is
   what keeps the journal inside the bench-guarded obs budget); a
   crash can tear at most the final line, and :func:`read_journal`
   tolerates (via ``errors='skip'`` semantics) a torn tail, while the
   flight recorder dump re-serializes the in-memory ring so even
   unflushed records survive any crash Python gets to observe.
   Rotation renames nothing: the active segment simply closes and the
   next opens, so no window exists in which events can vanish.
3. **Deterministic causal content.** Event ids and timestamps are
   execution accidents; everything else is pipeline truth. The
   canonical form (:func:`canonical_lines`) strips ``id``/``ts``/
   ``parent`` and drops execution-detail events (``exec.*`` — shard
   fan-out shape depends on the worker count by design), and is
   byte-identical for any ``workers`` setting of the same spec —
   test-asserted, the same discipline as the sharding contract.

The journal doubles as the live tail for the console's
``GET /api/events/stream`` (SSE): a bounded in-memory deque of recent
records plus a condition variable lets handler threads block for the
next event, and :meth:`EventJournal.events_since` replays any resume
gap from disk so ``Last-Event-ID`` reconnects lose nothing.

A second bounded buffer — the **flight recorder** — keeps the last N
events regardless of rotation and dumps them as one JSON document on
crash or SIGTERM (:meth:`EventJournal.dump_recorder`), the black box
an operator reads when the process is already gone.

Import discipline: stdlib + :mod:`repro.errors` only — the hot layers
(stream engines, alarm DB, archive) import this module at module
scope, exactly as they do ``obs.metrics``.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import threading
import time
import uuid
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import ReproError

__all__ = [
    "DETAIL_PREFIX",
    "EventJournal",
    "active",
    "canonical_lines",
    "causal",
    "current_parent",
    "disable",
    "emit",
    "enabled",
    "install",
    "lineage",
    "read_journal",
    "run_id",
    "uptime_seconds",
]

#: Kinds under this prefix describe *how* the run executed (shard
#: fan-out shape), not *what* the pipeline concluded; they vary with
#: the worker count and are excluded from the canonical form.
DETAIL_PREFIX = "exec."

#: Default rotation threshold for one journal segment.
DEFAULT_ROTATE_BYTES = 4 * 1024 * 1024

#: Default size of the in-memory tail backing the SSE stream.
DEFAULT_TAIL_EVENTS = 4096

#: Records kept by the flight recorder when none is configured.
DEFAULT_RECORDER_EVENTS = 256

#: Write-batching bounds: pending records are serialized and flushed
#: to the active segment once either bound is hit. Small enough that
#: an external tailer lags by well under a second, large enough that
#: the hot path never pays JSON + I/O per event.
DEFAULT_FLUSH_EVENTS = 32
DEFAULT_FLUSH_SECONDS = 0.5

#: Process start (wall clock) — uptime reference for /status.
_STARTED = time.time()

#: Lazily minted per-process run id: distinguishes scrapes/journals
#: from restarted sessions even when no journal is installed.
_RUN_ID: str | None = None
_RUN_ID_LOCK = threading.Lock()

#: The installed journal, or ``None`` when the provenance plane is
#: off. The single global every :func:`emit` checks.
_JOURNAL: "EventJournal | None" = None

#: Causal context: the event id new emissions parent to by default.
_PARENT: ContextVar[int | None] = ContextVar(
    "repro_event_parent", default=None
)


def run_id() -> str:
    """This process's run id (minted once, stable for the process)."""
    global _RUN_ID
    if _RUN_ID is None:
        with _RUN_ID_LOCK:
            if _RUN_ID is None:
                _RUN_ID = uuid.uuid4().hex[:12]
    return _RUN_ID


def uptime_seconds() -> float:
    """Seconds since this process imported the obs plane."""
    return time.time() - _STARTED


class EventJournal:
    """Rotated JSONL journal + live tail + flight recorder.

    Parameters
    ----------
    directory:
        Where segments land (created if missing). ``None`` keeps the
        journal memory-only: the live tail and flight recorder work,
        nothing persists (and lineage needs the tail to suffice).
    run:
        Run id stamped on every record; default: the process run id.
    rotate_bytes:
        Close the active segment once it exceeds this many bytes; the
        next event opens the next segment. Segments are never deleted
        — rotation bounds the *file* size (tail-follower friendly),
        not the history.
    tail_events:
        In-memory record tail backing ``events_since``/``wait`` (the
        SSE surface). Resumes older than the tail replay from disk.
    recorder_events:
        Flight-recorder depth (last N events kept for crash dumps).
    flush_events / flush_seconds:
        Write-batching bounds: pending records are serialized and
        flushed once ``flush_events`` accumulate or the oldest
        pending record is ``flush_seconds`` old, whichever first.
        ``flush_events=1`` restores write-through behavior.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        run: str | None = None,
        rotate_bytes: int = DEFAULT_ROTATE_BYTES,
        tail_events: int = DEFAULT_TAIL_EVENTS,
        recorder_events: int = DEFAULT_RECORDER_EVENTS,
        flush_events: int = DEFAULT_FLUSH_EVENTS,
        flush_seconds: float = DEFAULT_FLUSH_SECONDS,
    ) -> None:
        if rotate_bytes < 1:
            raise ReproError(
                f"rotate_bytes must be >= 1: {rotate_bytes!r}"
            )
        if tail_events < 1 or recorder_events < 1:
            raise ReproError(
                "tail_events and recorder_events must be >= 1"
            )
        if flush_events < 1 or flush_seconds <= 0:
            raise ReproError(
                "flush_events must be >= 1 and flush_seconds > 0"
            )
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.run = run or run_id()
        self.rotate_bytes = rotate_bytes
        self._cond = threading.Condition()
        self._next_id = 1
        self._segment_seq = 0
        self._segment_bytes = 0
        self._stream: io.TextIOBase | None = None
        self._tail: list[dict[str, Any]] = []
        self._tail_limit = tail_events
        self._recorder: list[dict[str, Any]] = []
        self._recorder_limit = recorder_events
        self._pending: list[dict[str, Any]] = []
        self._flush_events = flush_events
        self._flush_seconds = flush_seconds
        self._oldest_pending_ts = 0.0
        self._closed = False

    # -- segment plumbing --------------------------------------------------

    def _segment_path(self, seq: int) -> Path:
        assert self.directory is not None
        return self.directory / f"events-{self.run}-{seq:05d}.jsonl"

    def segments(self) -> list[Path]:
        """This run's segment files, oldest first."""
        if self.directory is None:
            return []
        return sorted(
            self.directory.glob(f"events-{self.run}-*.jsonl")
        )

    def _write_line(self, line: str) -> None:
        """Append one record line, rotating first when due."""
        if self.directory is None:
            return
        encoded = len(line) + 1
        if (
            self._stream is not None
            and self._segment_bytes + encoded > self.rotate_bytes
            and self._segment_bytes > 0
        ):
            # Close-then-open, never rename: a tailing reader (or a
            # crash) always sees complete segments under final names.
            self._stream.flush()
            os.fsync(self._stream.fileno())
            self._stream.close()
            self._stream = None
        if self._stream is None:
            self._segment_seq += 1
            self._segment_bytes = 0
            self._stream = open(
                self._segment_path(self._segment_seq),
                "a",
                encoding="utf-8",
            )
        self._stream.write(line + "\n")
        self._segment_bytes += encoded

    def _flush_locked(self) -> None:
        """Serialize + write every pending record; caller holds lock.

        JSON encoding and I/O happen here, not in :meth:`emit` — the
        hot path only snapshots dicts, and this batch point hands the
        crash risk to the OS buffer (fsync is paid on rotate/close).
        """
        if not self._pending:
            return
        for record in self._pending:
            self._write_line(
                json.dumps(
                    record, separators=(",", ":"), default=str
                )
            )
        self._pending.clear()
        if self._stream is not None:
            self._stream.flush()

    def flush(self) -> None:
        """Force pending records to disk (a no-op when memory-only)."""
        with self._cond:
            self._flush_locked()

    # -- the write path ----------------------------------------------------

    def emit(
        self,
        kind: str,
        parent: int | None = None,
        **fields: Any,
    ) -> int:
        """Append one event; returns its monotonic id.

        ``parent`` defaults to the ambient causal context (see
        :func:`causal`). Extra ``fields`` are stored flat, sorted by
        name so identical content serializes identically.
        """
        if parent is None:
            parent = _PARENT.get()
        with self._cond:
            if self._closed:
                raise ReproError("event journal is closed")
            event_id = self._next_id
            self._next_id += 1
            record: dict[str, Any] = {
                "id": event_id,
                "ts": round(time.time(), 6),
                "run": self.run,
                "kind": kind,
            }
            if parent is not None:
                record["parent"] = parent
            for name in sorted(fields):
                value = fields[name]
                if value is not None:
                    record[name] = value
            if self.directory is not None:
                if not self._pending:
                    self._oldest_pending_ts = record["ts"]
                self._pending.append(record)
                # run.* / alarm.* write through: they are rare, they
                # gate audits, and an idle linger may never emit the
                # next event that would age the batch out.
                if (
                    len(self._pending) >= self._flush_events
                    or record["ts"] - self._oldest_pending_ts
                    >= self._flush_seconds
                    or kind.startswith(("run.", "alarm."))
                ):
                    self._flush_locked()
            self._tail.append(record)
            if len(self._tail) > self._tail_limit:
                del self._tail[: len(self._tail) - self._tail_limit]
            self._recorder.append(record)
            if len(self._recorder) > self._recorder_limit:
                del self._recorder[
                    : len(self._recorder) - self._recorder_limit
                ]
            self._cond.notify_all()
        return event_id

    @property
    def last_id(self) -> int:
        """Id of the most recent event (0 before the first)."""
        with self._cond:
            return self._next_id - 1

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        with self._cond:
            self._closed = True
            self._flush_locked()
            if self._stream is not None:
                self._stream.flush()
                os.fsync(self._stream.fileno())
                self._stream.close()
                self._stream = None
            self._cond.notify_all()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the read path -----------------------------------------------------

    def read(self) -> list[dict[str, Any]]:
        """Every persisted record of this run, id order.

        Memory-only journals answer from the tail instead (bounded —
        old events may have fallen off).
        """
        if self.directory is None:
            with self._cond:
                return list(self._tail)
        self.flush()
        return list(read_journal(self.directory, run=self.run))

    def events_since(self, last_id: int) -> list[dict[str, Any]]:
        """All records with ``id > last_id`` — no gaps, no duplicates.

        Served from the in-memory tail when it still covers the
        resume point, else replayed from disk (so an SSE client with
        a stale ``Last-Event-ID`` still catches up completely).
        """
        with self._cond:
            if last_id >= self._next_id - 1:
                return []
            tail = list(self._tail)
        if tail and tail[0]["id"] <= last_id + 1:
            return [r for r in tail if r["id"] > last_id]
        if self.directory is None:
            return [r for r in tail if r["id"] > last_id]
        return [
            r for r in self.read() if r["id"] > last_id
        ]

    def wait(self, last_id: int, timeout: float) -> bool:
        """Block until an event with ``id > last_id`` exists.

        Returns ``False`` on timeout or once the journal is closed —
        SSE handler threads use the ``False`` beats to poll their
        client's liveness and their server's shutdown flag.
        """
        with self._cond:
            if self._next_id - 1 > last_id:
                return True
            if self._closed:
                return False
            self._cond.wait(timeout)
            return self._next_id - 1 > last_id

    # -- the flight recorder ----------------------------------------------

    def recorder_tail(self) -> list[dict[str, Any]]:
        """The flight recorder's current contents, oldest first."""
        with self._cond:
            return list(self._recorder)

    def dump_recorder(
        self, reason: str, path: str | os.PathLike | None = None
    ) -> Path | None:
        """Write the black box: last-N events + why, as one JSON file.

        Default location: ``flight-<run>.json`` beside the segments.
        Returns the written path, or ``None`` for a memory-only
        journal with no explicit ``path``. Never raises — this runs
        on crash/signal paths where a second failure must not mask
        the first.
        """
        if path is None:
            if self.directory is None:
                return None
            path = self.directory / f"flight-{self.run}.json"
        target = Path(path)
        document = {
            "run": self.run,
            "reason": reason,
            "dumped_ts": round(time.time(), 6),
            "events": self.recorder_tail(),
        }
        try:
            # Best effort: land any write-batched records too, so the
            # segments on disk agree with the black box.
            self.flush()
        except OSError:
            pass
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(target.name + ".tmp")
            tmp.write_text(
                json.dumps(document, indent=2, default=str) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, target)
        except OSError:
            return None
        return target


def read_journal(
    directory: str | os.PathLike,
    run: str | None = None,
) -> Iterator[dict[str, Any]]:
    """Parse every journal segment under ``directory``, id order.

    ``run`` narrows to one run's segments; default reads all runs
    (segment names sort run-major, seq-minor). A torn final line — a
    crashed writer's half-record — is skipped, not fatal; any other
    malformed line raises :class:`~repro.errors.ReproError` because a
    corrupt journal must not silently shorten an audit trail.
    """
    root = Path(directory)
    if not root.is_dir():
        raise ReproError(f"no event journal at {root}")
    pattern = f"events-{run}-*.jsonl" if run else "events-*.jsonl"
    segments = sorted(root.glob(pattern))
    if not segments:
        raise ReproError(
            f"no journal segments under {root}"
            + (f" for run {run!r}" if run else "")
        )
    last = segments[-1]
    for segment in segments:
        lines = segment.read_text(encoding="utf-8").splitlines()
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except ValueError:
                if segment == last and number == len(lines) - 1:
                    return  # torn tail from a crashed writer
                raise ReproError(
                    f"corrupt journal line {segment.name}:{number + 1}"
                )


def canonical_lines(
    records: Iterable[dict[str, Any]],
) -> list[str]:
    """The deterministic causal content of a journal.

    Strips execution accidents (``id``/``ts``/``parent``, the
    ``workers`` count, and the ``exec.*`` detail events whose shape
    tracks the worker count) and re-serializes with sorted keys —
    byte-identical across worker counts for the same spec, the
    property the determinism test pins. ``window.seal``'s ``chunks``
    field holds event *ids* (they shift with the interleaved
    ``exec.*`` traffic), so it is rewritten to the referenced chunks'
    stable ``seq`` numbers.
    """
    materialized = list(records)
    by_id = {record["id"]: record for record in materialized}
    out: list[str] = []
    for record in materialized:
        if record.get("kind", "").startswith(DETAIL_PREFIX):
            continue
        content = {
            key: value
            for key, value in record.items()
            if key not in ("id", "ts", "parent", "run", "workers")
        }
        if record.get("kind") == "window.seal" and "chunks" in content:
            content["chunks"] = sorted(
                by_id[ref]["seq"]
                for ref in content["chunks"]
                if ref in by_id and "seq" in by_id[ref]
            )
        out.append(
            json.dumps(content, separators=(",", ":"),
                       sort_keys=True, default=str)
        )
    return out


# -- lineage reconstruction -------------------------------------------------


def lineage(
    records: Iterable[dict[str, Any]], alarm_id: str
) -> dict[str, Any]:
    """Reconstruct one alarm's provenance chain from journal records.

    Walks ``parent`` links up from the alarm's insert/merge events
    (verdict → window seal → run start) and joins sideways on the
    window index for the source chunks, shard tasks and archive
    partitions of that window. Lifecycle transitions join on
    ``alarm_id``. Raises :class:`~repro.errors.ReproError` when the
    alarm never appears in the journal.
    """
    by_id: dict[int, dict[str, Any]] = {}
    alarm_events: list[dict[str, Any]] = []
    for record in records:
        by_id[record["id"]] = record
        if record.get("alarm_id") == alarm_id:
            alarm_events.append(record)
    if not alarm_events:
        raise ReproError(
            f"alarm {alarm_id!r} does not appear in the journal"
        )

    def ancestors(record: dict[str, Any]) -> list[dict[str, Any]]:
        chain: list[dict[str, Any]] = []
        seen: set[int] = set()
        current = record
        while True:
            parent = current.get("parent")
            if parent is None or parent in seen:
                return chain
            seen.add(parent)
            current = by_id.get(parent)
            if current is None:
                return chain
            chain.append(current)

    anchor = next(
        (
            r for r in alarm_events
            if r["kind"] in ("alarm.insert", "alarm.merge")
        ),
        alarm_events[0],
    )
    chain = ancestors(anchor)
    verdict = next(
        (r for r in chain if r["kind"] == "detector.verdict"), None
    )
    window = next(
        (r for r in chain if r["kind"] == "window.seal"), None
    )
    start = next((r for r in chain if r["kind"] == "run.start"), None)
    chunks: list[dict[str, Any]] = []
    tasks: list[dict[str, Any]] = []
    partitions: list[dict[str, Any]] = []
    if window is not None:
        for chunk_id in window.get("chunks", ()):
            chunk = by_id.get(chunk_id)
            if chunk is not None:
                chunks.append(chunk)
        index = window.get("index")
        for record in by_id.values():
            if (
                record["kind"].startswith(DETAIL_PREFIX)
                and record.get("window") == index
            ):
                tasks.append(record)
            elif (
                record["kind"] == "archive.partition"
                and record.get("slice") == index
            ):
                partitions.append(record)
    return {
        "alarm_id": alarm_id,
        "run": anchor.get("run"),
        "anchor": anchor,
        "transitions": [
            r for r in alarm_events if r is not anchor
        ],
        "verdict": verdict,
        "window": window,
        "chunks": chunks,
        "tasks": sorted(tasks, key=lambda r: r["id"]),
        "partitions": sorted(partitions, key=lambda r: r["id"]),
        "run_start": start,
    }


# -- module-level switchboard ----------------------------------------------


def active() -> EventJournal | None:
    """The installed journal, or ``None`` when provenance is off."""
    return _JOURNAL


def enabled() -> bool:
    return _JOURNAL is not None


def install(journal: EventJournal | None) -> EventJournal | None:
    """Swap the active journal, returning the previous one."""
    global _JOURNAL
    previous = _JOURNAL
    _JOURNAL = journal
    return previous


def disable() -> None:
    """Back to the no-op default (does not close the journal)."""
    global _JOURNAL
    _JOURNAL = None


def emit(
    kind: str, parent: int | None = None, **fields: Any
) -> int | None:
    """Record one event on the active journal; no-op when disabled."""
    journal = _JOURNAL
    if journal is None:
        return None
    return journal.emit(kind, parent=parent, **fields)


def current_parent() -> int | None:
    """The ambient causal parent (event id), if any."""
    return _PARENT.get()


@contextlib.contextmanager
def causal(event_id: int | None):
    """Make ``event_id`` the default parent for nested emissions.

    ``None`` is accepted (and is a no-op context) so call sites can
    pass :func:`emit`'s return value straight through whether or not
    a journal is installed.
    """
    token = _PARENT.set(event_id)
    try:
        yield
    finally:
        _PARENT.reset(token)
