"""The operator console: JSON API + dashboard over the metrics port.

:class:`ConsoleServer` extends :class:`repro.obs.serve.MetricsServer`
— ``/metrics`` and ``/status`` keep their exact PR 7 bodies — with
the read/act operational plane:

========================================  ==================================
``GET /`` , ``GET /dashboard``            the embedded live dashboard page
``GET /api/alarms``                       alarm list; filter by ``status`` /
                                          ``detector`` / ``start`` / ``end``,
                                          paginate with ``limit`` / ``offset``
``GET /api/alarms/<id>``                  one alarm + its full audit trail
``POST /api/alarms/<id>/<action>``        lifecycle move: ``ack`` /
                                          ``assign`` / ``escalate`` /
                                          ``resolve`` / ``dismiss``
``GET /api/windows``                      recent sealed windows
``GET /api/archive/query``                planner-backed count / top-N
========================================  ==================================

POST bodies are optional JSON (``{"actor", "note", "assignee",
"verdict"}``); the same keys are accepted as query parameters so a
bare ``curl -X POST`` works. Errors are JSON too: 404 for unknown
alarms/paths, 409 for moves the lifecycle matrix forbids, 400 for bad
parameters, 405 for the wrong method on a known route.

Import discipline: the module is stdlib-only at import time; the
alarm database, window payloads and archive reader arrive as
constructor arguments (the reader via a zero-arg callable so archives
can attach lazily after the stream run ends). Handler threads
serialise archive access through a lock — ``ArchiveReader`` keeps
per-query state (``last_plan``) and is not itself thread-safe.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Callable

from repro.errors import (
    AlarmDatabaseError,
    AlarmTransitionError,
    FilterError,
    ReproError,
)
from repro.obs import events as obs_events
from repro.obs.dashboard import DASHBOARD_HTML
from repro.obs.serve import CONTENT_TYPE_JSON, MetricsServer, Response

__all__ = ["ConsoleServer"]

CONTENT_TYPE_HTML = "text/html; charset=utf-8"
CONTENT_TYPE_SSE = "text/event-stream; charset=utf-8"

#: Seconds between liveness beats on an idle SSE stream. Each beat is
#: an SSE comment line — ignored by EventSource, but the write (and
#: flush) is how the handler notices a hung-up client and how it
#: polls the server's shutdown flag.
SSE_HEARTBEAT_SECONDS = 1.0

#: Maximum alarms per page when the client does not say.
DEFAULT_PAGE = 100

_NO_STORE = {"Cache-Control": "no-store"}


def _json_response(
    status: int, payload: dict[str, Any]
) -> Response:
    body = json.dumps(payload, default=str).encode("utf-8")
    return (status, CONTENT_TYPE_JSON, body, dict(_NO_STORE))


def _error(status: int, message: str) -> Response:
    return _json_response(status, {"error": message})


def _float_param(
    query: dict[str, str], name: str
) -> float | None:
    raw = query.get(name)
    if raw is None or raw == "":
        return None
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")


def _int_param(
    query: dict[str, str], name: str, default: int
) -> int:
    raw = query.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")


class ConsoleServer(MetricsServer):
    """The full operator HTTP API on one loopback port.

    Parameters
    ----------
    alarms:
        The live :class:`~repro.system.alarmdb.AlarmDatabase`, or
        ``None`` to 404 the alarm surface.
    windows:
        Zero-arg callable returning recent sealed windows as
        JSON-ready dicts (newest last), or ``None``.
    archive:
        Zero-arg callable returning an
        :class:`~repro.archive.reader.ArchiveReader` (or ``None``
        when no archive is attached yet).
    dashboard:
        Serve the embedded page at ``/`` and ``/dashboard``.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        status: Callable[[], dict[str, Any]] | None = None,
        alarms: Any = None,
        windows: Callable[[], list[dict[str, Any]]] | None = None,
        archive: Callable[[], Any] | None = None,
        dashboard: bool = True,
    ) -> None:
        super().__init__(port=port, host=host, status=status)
        self._alarms = alarms
        self._windows = windows
        self._archive = archive
        self._dashboard = dashboard
        self._archive_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _get(self, path: str, query: dict[str, str]) -> Response | None:
        if self._dashboard and path in ("/", "/dashboard"):
            body = DASHBOARD_HTML.encode("utf-8")
            return (200, CONTENT_TYPE_HTML, body, dict(_NO_STORE))
        if path == "/api/alarms":
            return self._api_alarm_list(query)
        if path.startswith("/api/alarms/"):
            rest = path[len("/api/alarms/"):]
            if not rest or "/" in rest:
                return None
            return self._api_alarm_detail(rest)
        if path == "/api/windows":
            return self._api_windows(query)
        if path == "/api/archive/query":
            return self._api_archive_query(query)
        if path == "/api/events/stream":
            return self._api_events_stream(query)
        return super()._get(path, query)

    def _post(
        self, path: str, query: dict[str, str], body: bytes
    ) -> Response | None:
        if path.startswith("/api/alarms/"):
            rest = path[len("/api/alarms/"):]
            alarm_id, _, action = rest.partition("/")
            if alarm_id and action and "/" not in action:
                return self._api_alarm_action(
                    alarm_id, action, query, body
                )
        return None

    def _allows_post(self, path: str) -> bool:
        rest = path[len("/api/alarms/"):] if path.startswith(
            "/api/alarms/"
        ) else ""
        return bool(rest) and rest.count("/") == 1

    # ------------------------------------------------------------------
    # Alarm surface
    # ------------------------------------------------------------------

    def _api_alarm_list(self, query: dict[str, str]) -> Response:
        if self._alarms is None:
            return _error(404, "no alarm database attached")
        try:
            start = _float_param(query, "start")
            end = _float_param(query, "end")
            limit = _int_param(query, "limit", DEFAULT_PAGE)
            offset = _int_param(query, "offset", 0)
        except ValueError as exc:
            return _error(400, str(exc))
        status = query.get("status") or None
        detector = query.get("detector") or None
        try:
            rows, total = self._alarms.rows(
                status=status,
                start=start,
                end=end,
                detector=detector,
                limit=limit,
                offset=offset,
            )
            counts = self._alarms.counts_by_status()
        except AlarmDatabaseError as exc:
            return _error(400, str(exc))
        return _json_response(200, {
            "alarms": rows,
            "total": total,
            "counts": counts,
            "limit": limit,
            "offset": offset,
        })

    def _api_alarm_detail(self, alarm_id: str) -> Response:
        if self._alarms is None:
            return _error(404, "no alarm database attached")
        rows, _ = self._alarms.rows(alarm_id=alarm_id, limit=1)
        if not rows:
            return _error(404, f"unknown alarm {alarm_id!r}")
        payload = rows[0]
        payload["audit"] = [
            entry.as_dict()
            for entry in self._alarms.audit_trail(alarm_id)
        ]
        return _json_response(200, payload)

    def _api_alarm_action(
        self,
        alarm_id: str,
        action: str,
        query: dict[str, str],
        body: bytes,
    ) -> Response:
        if self._alarms is None:
            return _error(404, "no alarm database attached")
        fields: dict[str, Any] = {}
        if body.strip():
            try:
                fields = json.loads(body)
            except ValueError:
                return _error(400, "request body is not valid JSON")
            if not isinstance(fields, dict):
                return _error(400, "request body must be a JSON object")
        actor = str(fields.get("actor") or query.get("actor") or "console")
        note = str(fields.get("note") or query.get("note") or "")
        assignee = fields.get("assignee") or query.get("assignee")
        verdict = fields.get("verdict") or query.get("verdict")
        try:
            new_status = self._alarms.transition(
                alarm_id,
                action,
                actor=actor,
                note=note,
                assignee=assignee,
                verdict=verdict,
            )
        except AlarmTransitionError as exc:
            return _error(409, str(exc))
        except AlarmDatabaseError as exc:
            code = 404 if "unknown alarm" in str(exc) else 400
            return _error(code, str(exc))
        return _json_response(200, {
            "alarm_id": alarm_id,
            "action": action,
            "status": new_status,
            "actor": actor,
        })

    # ------------------------------------------------------------------
    # The live event stream (SSE)
    # ------------------------------------------------------------------

    def _api_events_stream(
        self, query: dict[str, str]
    ) -> Response:
        """``GET /api/events/stream`` — the journal as Server-Sent
        Events.

        Every event goes out as ``id: <n>\\ndata: <json>\\n\\n``; a
        reconnecting ``EventSource`` replays its ``Last-Event-ID``
        (surfaced here as the ``last_id`` query default) and the
        journal's ``events_since`` guarantees the resume has no gaps
        and no duplicates. Idle streams carry comment heartbeats.
        """
        journal = obs_events.active()
        if journal is None:
            return _error(404, "no event journal active")
        try:
            last_id = _int_param(query, "last_id", 0)
        except ValueError as exc:
            return _error(400, str(exc))
        owner = self

        def stream(wfile: Any) -> None:
            cursor = last_id
            try:
                wfile.write(b": repro event stream\n\n")
                wfile.flush()
                while not owner.stopping.is_set():
                    for record in journal.events_since(cursor):
                        cursor = record["id"]
                        data = json.dumps(
                            record, separators=(",", ":"),
                            default=str,
                        )
                        wfile.write(
                            f"id: {cursor}\ndata: {data}\n\n"
                            .encode("utf-8")
                        )
                    wfile.flush()
                    if not journal.wait(
                        cursor, timeout=SSE_HEARTBEAT_SECONDS
                    ):
                        wfile.write(b": heartbeat\n\n")
                        wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                # Client hung up mid-stream: unwind quietly; the
                # handler thread ends, the journal is untouched.
                pass

        return (200, CONTENT_TYPE_SSE, stream, dict(_NO_STORE))

    # ------------------------------------------------------------------
    # Windows + archive
    # ------------------------------------------------------------------

    def _api_windows(self, query: dict[str, str]) -> Response:
        try:
            limit = _int_param(query, "limit", 50)
        except ValueError as exc:
            return _error(400, str(exc))
        windows = list(self._windows()) if self._windows else []
        if limit >= 0:
            windows = windows[-limit:]
        return _json_response(200, {
            "windows": windows,
            "count": len(windows),
        })

    def _api_archive_query(self, query: dict[str, str]) -> Response:
        if self._archive is None:
            return _error(404, "no archive attached")
        reader = self._archive()
        if reader is None:
            return _error(404, "no archive attached")
        try:
            start = _float_param(query, "start")
            end = _float_param(query, "end")
            n = _int_param(query, "n", 10)
        except ValueError as exc:
            return _error(400, str(exc))
        flow_filter = query.get("filter") or None
        feature_name = query.get("top")
        with self._archive_lock:
            try:
                span = reader.stats().span or (0.0, 0.0)
                if start is None:
                    start = span[0]
                if end is None:
                    # span is inclusive of the last flow's start;
                    # queries treat end as exclusive.
                    end = span[1] + 1.0
                if feature_name:
                    from repro.flows.record import (
                        FlowFeature,
                        format_feature_value,
                    )
                    try:
                        feature = FlowFeature(feature_name)
                    except ValueError:
                        return _error(
                            400,
                            f"unknown feature {feature_name!r} "
                            "(srcIP/dstIP/srcPort/dstPort/proto)",
                        )
                    pairs = reader.top_feature_values(
                        start,
                        end,
                        feature,
                        n=n,
                        by_packets=query.get("by") == "packets",
                        flow_filter=flow_filter,
                    )
                    result: dict[str, Any] = {
                        "query": "top",
                        "feature": feature.value,
                        "values": [
                            {
                                "value": value,
                                "rendered": format_feature_value(
                                    feature, value
                                ),
                                "count": count,
                            }
                            for value, count in pairs
                        ],
                    }
                else:
                    stats = reader.count(start, end, flow_filter)
                    result = {
                        "query": "count",
                        "flows": stats.flows,
                        "packets": stats.packets,
                        "bytes": stats.bytes,
                    }
            except FilterError as exc:
                return _error(400, f"bad filter: {exc}")
            except ReproError as exc:
                return _error(400, str(exc))
            result["start"] = start
            result["end"] = end
            plan = getattr(reader, "last_plan", None)
            if plan is not None:
                result["plan"] = dataclasses.asdict(plan)
        return _json_response(200, result)
