"""Kullback-Leibler distance between feature histograms.

The histogram-based detector of Kind et al. [3] — used in the paper's
first (SWITCH) evaluation — compares each time bin's feature histogram
against a trained reference using the KL distance and alarms on
outliers. Because observed histograms have disjoint supports, both
distributions are smoothed over their support union before the distance
is taken.

:func:`kl_contributions` exposes the per-value terms of the sum, which
the detector turns into alarm meta-data: the histogram bins contributing
the largest positive share of the distance are the anomaly's suspects.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Mapping

from repro.errors import DetectorError

__all__ = ["kl_distance", "kl_contributions", "smooth_distributions"]

#: Additive smoothing mass assigned to unseen values.
_EPSILON = 1e-9


def smooth_distributions(
    observed: Mapping[Hashable, int],
    reference: Mapping[Hashable, int],
) -> tuple[dict[Hashable, float], dict[Hashable, float]]:
    """Normalise two histograms over their support union with smoothing.

    Returns probability dictionaries over the same key set, each summing
    to 1.0 (up to float error), with no zero entries.
    """
    union = set(observed) | set(reference)
    if not union:
        raise DetectorError("cannot smooth two empty histograms")
    # Deterministic key order: downstream sums then accumulate float
    # terms in the same order no matter how the histograms were built
    # (per-record counting vs merged columnar chunks), which keeps the
    # batch and streaming detection paths bit-identical.
    try:
        support: list[Hashable] = sorted(union)  # type: ignore[type-var]
    except TypeError:
        support = list(union)

    def normalise(histogram: Mapping[Hashable, int]) -> dict[Hashable, float]:
        total = sum(histogram.values())
        if total < 0:
            raise DetectorError("histogram has negative total")
        denom = total + _EPSILON * len(support)
        if denom == 0:
            # Empty histogram: uniform over the union support.
            return {key: 1.0 / len(support) for key in support}
        return {
            key: (histogram.get(key, 0) + _EPSILON) / denom
            for key in support
        }

    return normalise(observed), normalise(reference)


def kl_distance(
    observed: Mapping[Hashable, int] | Counter,
    reference: Mapping[Hashable, int] | Counter,
) -> float:
    """``KL(observed || reference)`` in bits, after smoothing.

    Non-negative; zero iff the smoothed distributions coincide.
    """
    p, q = smooth_distributions(observed, reference)
    distance = 0.0
    for key, p_value in p.items():
        distance += p_value * math.log2(p_value / q[key])
    # Clamp tiny negative float residue.
    return max(0.0, distance)


def kl_contributions(
    observed: Mapping[Hashable, int] | Counter,
    reference: Mapping[Hashable, int] | Counter,
) -> list[tuple[Hashable, float]]:
    """Per-value terms ``p log2(p/q)`` sorted by decreasing contribution.

    Positive terms mark values over-represented in the observed bin
    relative to the reference — the detector's meta-data candidates.
    """
    p, q = smooth_distributions(observed, reference)
    terms = [
        (key, p_value * math.log2(p_value / q[key]))
        for key, p_value in p.items()
    ]
    terms.sort(key=lambda kv: -kv[1])
    return terms
