"""Per-bin feature timeseries for the detectors.

Both detectors consume the same raw material: for every time bin, volume
counters (flows, packets, bytes) and the sample entropy of the four
header features (srcIP, dstIP, srcPort, dstPort) — optionally broken out
per exporting PoP, which is how the PCA subspace method localises
anomalies in Lakhina et al. [4].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detect.entropy import entropy_of_count_array, sample_entropy
from repro.errors import DetectorError
from repro.flows.aggregate import all_feature_histograms
from repro.flows.record import FlowFeature, FlowRecord
from repro.flows.table import FlowTable
from repro.flows.trace import FlowTrace

__all__ = [
    "VOLUME_COLUMNS",
    "ENTROPY_COLUMNS",
    "BinFeatures",
    "FeatureMatrix",
    "compute_bin_features",
    "build_feature_matrix",
]

VOLUME_COLUMNS = ("flows", "packets", "bytes")
ENTROPY_COLUMNS = ("H(srcIP)", "H(dstIP)", "H(srcPort)", "H(dstPort)")

_ENTROPY_FEATURES = (
    FlowFeature.SRC_IP,
    FlowFeature.DST_IP,
    FlowFeature.SRC_PORT,
    FlowFeature.DST_PORT,
)


@dataclass(frozen=True, slots=True)
class BinFeatures:
    """Feature vector of one time bin."""

    flows: int
    packets: int
    bytes: int
    entropy_src_ip: float
    entropy_dst_ip: float
    entropy_src_port: float
    entropy_dst_port: float

    def as_array(self) -> np.ndarray:
        """Vector in ``VOLUME_COLUMNS + ENTROPY_COLUMNS`` order."""
        return np.array(
            [
                self.flows,
                self.packets,
                self.bytes,
                self.entropy_src_ip,
                self.entropy_dst_ip,
                self.entropy_src_port,
                self.entropy_dst_port,
            ],
            dtype=float,
        )


def compute_bin_features(
    flows: list[FlowRecord] | FlowTable,
) -> BinFeatures:
    """Volume and entropy features of one bin's flows.

    A :class:`FlowTable` takes the vectorized path: per-feature counts
    come from ``np.unique`` over the columns and the entropies from one
    array expression, with no per-flow Python work.
    """
    if isinstance(flows, FlowTable):
        entropies = {}
        for feature in _ENTROPY_FEATURES:
            _, counts = np.unique(
                flows.feature_column(feature), return_counts=True
            )
            entropies[feature] = entropy_of_count_array(counts)
        return BinFeatures(
            flows=len(flows),
            packets=flows.total_packets(),
            bytes=flows.total_bytes(),
            entropy_src_ip=entropies[FlowFeature.SRC_IP],
            entropy_dst_ip=entropies[FlowFeature.DST_IP],
            entropy_src_port=entropies[FlowFeature.SRC_PORT],
            entropy_dst_port=entropies[FlowFeature.DST_PORT],
        )
    histograms = all_feature_histograms(flows)
    packets = sum(f.packets for f in flows)
    bytes_ = sum(f.bytes for f in flows)
    entropies = {
        feature: sample_entropy(histograms[feature])
        for feature in _ENTROPY_FEATURES
    }
    return BinFeatures(
        flows=len(flows),
        packets=packets,
        bytes=bytes_,
        entropy_src_ip=entropies[FlowFeature.SRC_IP],
        entropy_dst_ip=entropies[FlowFeature.DST_IP],
        entropy_src_port=entropies[FlowFeature.SRC_PORT],
        entropy_dst_port=entropies[FlowFeature.DST_PORT],
    )


@dataclass
class FeatureMatrix:
    """A bins × columns matrix with labelled columns.

    ``data[i, j]`` is feature ``columns[j]`` in bin ``bin_indices[i]``.
    For per-PoP matrices the column labels carry the PoP index, e.g.
    ``"pop3:H(dstPort)"``.
    """

    data: np.ndarray
    columns: tuple[str, ...]
    bin_indices: tuple[int, ...]
    origin: float
    bin_seconds: float

    def __post_init__(self) -> None:
        if self.data.ndim != 2:
            raise DetectorError("feature matrix must be 2-D")
        if self.data.shape[1] != len(self.columns):
            raise DetectorError(
                f"{self.data.shape[1]} columns vs {len(self.columns)} labels"
            )
        if self.data.shape[0] != len(self.bin_indices):
            raise DetectorError(
                f"{self.data.shape[0]} rows vs {len(self.bin_indices)} bins"
            )

    def bin_interval(self, row: int) -> tuple[float, float]:
        """Time interval of matrix row ``row``."""
        index = self.bin_indices[row]
        start = self.origin + index * self.bin_seconds
        return (start, start + self.bin_seconds)

    @property
    def bin_count(self) -> int:
        """Number of rows."""
        return self.data.shape[0]


def build_feature_matrix(
    trace: FlowTrace,
    per_pop: bool = False,
    pop_count: int | None = None,
    include_volume: bool = True,
    include_entropy: bool = True,
) -> FeatureMatrix:
    """Compute the bins × features matrix of ``trace``.

    With ``per_pop`` each exporting router contributes its own column
    group (rows stay time bins); ``pop_count`` bounds the router space
    (defaults to ``max router + 1``).
    """
    if not include_volume and not include_entropy:
        raise DetectorError("at least one feature group must be included")
    if not len(trace):
        raise DetectorError("cannot build features from an empty trace")

    column_labels: list[str] = []
    groups: list[str] = []
    if per_pop:
        if pop_count is None:
            pop_count = int(trace.table.router.max()) + 1
        groups = [f"pop{p}" for p in range(pop_count)]
    else:
        groups = [""]

    base_columns: list[str] = []
    if include_volume:
        base_columns.extend(VOLUME_COLUMNS)
    if include_entropy:
        base_columns.extend(ENTROPY_COLUMNS)
    for group in groups:
        prefix = f"{group}:" if group else ""
        column_labels.extend(f"{prefix}{name}" for name in base_columns)

    rows = []
    bin_indices = []
    for index, bin_table in trace.bin_tables():
        bin_indices.append(index)
        row: list[float] = []
        for pop, group in enumerate(groups):
            if per_pop:
                selected = bin_table.select(bin_table.router == pop)
            else:
                selected = bin_table
            features = compute_bin_features(selected)
            vector = features.as_array()
            if include_volume and include_entropy:
                row.extend(vector)
            elif include_volume:
                row.extend(vector[:3])
            else:
                row.extend(vector[3:])
        rows.append(row)

    return FeatureMatrix(
        data=np.array(rows, dtype=float),
        columns=tuple(column_labels),
        bin_indices=tuple(bin_indices),
        origin=trace.origin,
        bin_seconds=trace.bin_seconds,
    )
