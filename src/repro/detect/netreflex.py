"""A NetReflex-like detector: PCA subspace over volume + entropy features.

Stands in for the commercial Guavus NetReflex system of the paper's
GEANT deployment (DESIGN.md §2). Like the original it:

* detects "on the basis of volume and IP features entropy variations"
  — the feature matrix combines flow/packet/byte counts with the sample
  entropies of the four header features, per time bin;
* uses the PCA subspace method of Lakhina et al. [4] with a Q-statistic
  threshold;
* emits "fine-grained meta-data often at the level of individual IPs and
  port numbers": for each alarmed bin, the values whose probability mass
  grew the most against the trained reference distribution — computed
  under both flow and packet weighting so low-flow/high-packet floods
  still yield endpoints;
* may therefore *miss part of an anomaly* or flag popular values, which
  is precisely the incompleteness the extraction step compensates for.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.detect.base import Alarm, Detector, MetadataItem
from repro.detect.features import (
    ENTROPY_COLUMNS,
    VOLUME_COLUMNS,
    BinFeatures,
    FeatureMatrix,
    build_feature_matrix,
)
from repro.flows.table import FlowTable
from repro.detect.pca import PCAModel, fit_pca_model
from repro.errors import DetectorError
from repro.flows.aggregate import feature_histogram
from repro.flows.record import FlowFeature
from repro.flows.trace import FlowTrace

__all__ = ["NetReflexConfig", "NetReflexDetector"]

_HEADER_FEATURES = (
    FlowFeature.SRC_IP,
    FlowFeature.DST_IP,
    FlowFeature.SRC_PORT,
    FlowFeature.DST_PORT,
)


@dataclass(frozen=True)
class NetReflexConfig:
    """Tunables of the NetReflex-like detector.

    ``metadata_per_feature`` keeps the meta-data fine-grained (the real
    system reports individual IPs/ports, not lists); ``excess_threshold``
    is the minimum probability-mass gain a value needs before it is
    implicated. ``weightings`` controls which histograms attribution
    sees: flow-weighted catches many-flow anomalies, packet-weighted
    catches point-to-point floods.
    """

    variance_captured: float = 0.90
    max_components: int | None = None
    alpha: float = 0.001
    metadata_per_feature: int = 1
    excess_threshold: float = 0.10
    weightings: tuple[str, ...] = ("flows", "packets")
    label_sigma: float = 2.0

    def __post_init__(self) -> None:
        if self.metadata_per_feature < 0:
            raise DetectorError("metadata_per_feature must be >= 0")
        if not 0 < self.excess_threshold < 1:
            raise DetectorError("excess_threshold must lie in (0, 1)")
        if not self.weightings:
            raise DetectorError("at least one weighting is required")


class NetReflexDetector(Detector):
    """PCA/entropy detector with fine-grained meta-data attribution."""

    name = "netreflex-pca"

    def __init__(self, config: NetReflexConfig | None = None) -> None:
        self.config = config or NetReflexConfig()
        self._model: PCAModel | None = None
        self._columns: tuple[str, ...] = ()
        self._entropy_mean: dict[str, float] = {}
        self._entropy_std: dict[str, float] = {}
        self._references: dict[tuple[FlowFeature, str], Counter] = {}
        self._volume_mean: dict[str, float] = {}
        self._volume_std: dict[str, float] = {}

    # -- training -----------------------------------------------------------

    def train(self, trace: FlowTrace) -> None:
        """Fit the subspace model and the attribution references."""
        matrix = build_feature_matrix(trace)
        if matrix.bin_count < 3:
            raise DetectorError(
                "NetReflex detector needs at least 3 training bins"
            )
        self._columns = matrix.columns
        self._model = fit_pca_model(
            matrix.data,
            variance_captured=self.config.variance_captured,
            max_components=self.config.max_components,
            alpha=self.config.alpha,
        )
        # Column statistics for labelling heuristics.
        for column in ("flows", "packets", "bytes", *ENTROPY_COLUMNS):
            index = matrix.columns.index(column)
            series = matrix.data[:, index]
            mean = float(series.mean())
            std = float(series.std()) or 1e-9
            if column in ENTROPY_COLUMNS:
                self._entropy_mean[column] = mean
                self._entropy_std[column] = std
            else:
                self._volume_mean[column] = mean
                self._volume_std[column] = std
        # Reference histograms for meta-data attribution.
        all_flows = list(trace)
        for feature in _HEADER_FEATURES:
            for weighting in self.config.weightings:
                self._references[(feature, weighting)] = feature_histogram(
                    all_flows, feature, weighting
                )

    # -- detection ------------------------------------------------------------

    def detect(self, trace: FlowTrace) -> list[Alarm]:
        """Alarm bins whose SPE exceeds the Q-statistic threshold."""
        self._require_trained(self._model is not None)
        matrix = build_feature_matrix(trace)
        return self.detect_matrix(matrix, trace.between_table)

    def detect_matrix(
        self,
        matrix: FeatureMatrix,
        window_table: "Callable[[float, float], FlowTable]",
    ) -> list[Alarm]:
        """Score a pre-built feature matrix (the batch ``detect`` body).

        ``window_table`` maps an alarmed bin's ``[start, end)`` to its
        flow table for meta-data attribution. Splitting this from
        :meth:`detect` lets :mod:`repro.parallel.detect` assemble the
        matrix from per-worker bin ranges and still score, label and
        attribute through the identical code path.
        """
        self._require_trained(self._model is not None)
        assert self._model is not None
        if matrix.columns != self._columns:
            raise DetectorError(
                "detection matrix columns differ from training"
            )
        spe = self._model.spe(matrix.data)
        alarms = []
        for row in range(matrix.bin_count):
            if spe[row] <= self._model.spe_threshold:
                continue
            start, end = matrix.bin_interval(row)
            histograms = self.window_histograms(window_table(start, end))
            alarms.append(
                self._make_alarm(
                    index=matrix.bin_indices[row],
                    start=start,
                    end=end,
                    spe=float(spe[row]),
                    row=matrix.data[row],
                    histograms=histograms,
                )
            )
        return alarms

    def evaluate_window(
        self,
        index: int,
        start: float,
        end: float,
        features: BinFeatures,
        histograms: Mapping[tuple[FlowFeature, str], Counter],
    ) -> Alarm | None:
        """Evaluate one accumulated window exactly like one detect() bin.

        This is the streaming entry point: ``features`` and
        ``histograms`` come from incremental accumulators instead of a
        trace slice, but the scoring, labelling and attribution code is
        the same as the batch path, so a closed streaming window agrees
        with the corresponding batch bin.
        """
        self._require_trained(self._model is not None)
        assert self._model is not None
        if self._columns != VOLUME_COLUMNS + ENTROPY_COLUMNS:
            raise DetectorError(
                "streaming evaluation requires the default (non-per-PoP) "
                "feature columns"
            )
        row = features.as_array()
        spe = float(self._model.spe(row[np.newaxis, :])[0])
        if spe <= self._model.spe_threshold:
            return None
        return self._make_alarm(
            index=index, start=start, end=end, spe=spe, row=row,
            histograms=histograms,
        )

    def _make_alarm(
        self,
        index: int,
        start: float,
        end: float,
        spe: float,
        row: np.ndarray,
        histograms: Mapping[tuple[FlowFeature, str], Counter],
    ) -> Alarm:
        assert self._model is not None
        return Alarm(
            alarm_id=f"{self.name}-bin{index}",
            detector=self.name,
            start=start,
            end=end,
            score=float(spe / self._model.spe_threshold),
            label=self._label(row),
            metadata=self.attribute_histograms(histograms),
        )

    # -- meta-data attribution ---------------------------------------------

    def window_histograms(
        self, flows
    ) -> dict[tuple[FlowFeature, str], Counter]:
        """Per-(feature, weighting) histograms attribution consumes."""
        return {
            (feature, weighting): feature_histogram(
                flows, feature, weighting
            )
            for feature in _HEADER_FEATURES
            for weighting in self.config.weightings
        }

    def attribute_histograms(
        self, observed: Mapping[tuple[FlowFeature, str], Counter]
    ) -> list[MetadataItem]:
        """Values whose probability mass grew most vs the reference.

        Works on pre-computed histograms so the batch path (histograms
        of a trace slice) and the streaming path (histograms merged
        chunk by chunk) share the attribution logic verbatim. Ties
        break on the smaller value, independent of histogram order.
        """
        metadata: list[MetadataItem] = []
        for feature in _HEADER_FEATURES:
            best: dict[int, float] = {}
            for weighting in self.config.weightings:
                histogram = observed.get((feature, weighting))
                if not histogram:
                    continue
                observed_total = sum(histogram.values())
                if observed_total == 0:
                    continue
                reference = self._references[(feature, weighting)]
                reference_total = sum(reference.values()) or 1
                for value, count in histogram.items():
                    p_observed = count / observed_total
                    p_reference = reference.get(value, 0) / reference_total
                    excess = p_observed - p_reference
                    if excess >= self.config.excess_threshold:
                        best[value] = max(best.get(value, 0.0), excess)
            top = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
            for value, excess in top[: self.config.metadata_per_feature]:
                metadata.append(
                    MetadataItem(feature=feature, value=value, weight=excess)
                )
        metadata.sort(key=lambda item: -item.weight)
        return metadata

    # -- labelling -------------------------------------------------------------

    def _z(self, row: np.ndarray, column: str) -> float:
        index = self._columns.index(column)
        if column in ENTROPY_COLUMNS:
            mean = self._entropy_mean[column]
            std = self._entropy_std[column]
        else:
            mean = self._volume_mean[column]
            std = self._volume_std[column]
        return (float(row[index]) - mean) / std

    def _label(self, row: np.ndarray) -> str:
        """Heuristic anomaly class from entropy/volume deviations.

        Mirrors the qualitative rules of [4]: scans disperse the scanned
        feature's entropy; (D)DoS concentrates destinations while
        dispersing sources; pure volume spikes with stable flow counts
        indicate point-to-point floods.
        """
        sigma = self.config.label_sigma
        z_dst_port = self._z(row, "H(dstPort)")
        z_dst_ip = self._z(row, "H(dstIP)")
        z_src_ip = self._z(row, "H(srcIP)")
        z_flows = self._z(row, "flows")
        z_packets = self._z(row, "packets")

        if z_dst_port > sigma and z_dst_ip <= sigma / 2:
            return "port scan"
        if z_dst_ip > sigma:
            return "network scan"
        if z_src_ip > sigma / 2 and z_dst_ip < -sigma / 4:
            return "DDoS"
        if z_packets > sigma and z_flows < sigma / 2:
            return "point-to-point flood"
        if z_dst_ip < -sigma:
            return "DoS"
        return "anomaly"
