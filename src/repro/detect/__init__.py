"""Anomaly detectors feeding the extraction system's alarm database.

Two detector families, matching the paper's two evaluations:

* :class:`HistogramKLDetector` — the histogram/Kullback-Leibler detector
  of Kind et al. [3] (SWITCH evaluation);
* :class:`NetReflexDetector` — a PCA subspace detector over volume and
  entropy features in the style of Lakhina et al. [4], standing in for
  the commercial Guavus NetReflex system (GEANT evaluation).

Both emit :class:`Alarm` objects: a time interval, a label guess and
fine-grained — possibly incomplete — meta-data hints.
"""

from repro.detect.base import Alarm, Detector, MetadataItem
from repro.detect.entropy import (
    entropy_of_counts,
    normalized_entropy,
    sample_entropy,
)
from repro.detect.features import (
    ENTROPY_COLUMNS,
    VOLUME_COLUMNS,
    BinFeatures,
    FeatureMatrix,
    build_feature_matrix,
    compute_bin_features,
)
from repro.detect.histogram import HistogramDetectorConfig, HistogramKLDetector
from repro.detect.kl import kl_contributions, kl_distance, smooth_distributions
from repro.detect.netreflex import NetReflexConfig, NetReflexDetector
from repro.detect.pca import PCAModel, fit_pca_model, q_statistic_threshold

__all__ = [
    "Alarm",
    "Detector",
    "MetadataItem",
    "entropy_of_counts",
    "normalized_entropy",
    "sample_entropy",
    "ENTROPY_COLUMNS",
    "VOLUME_COLUMNS",
    "BinFeatures",
    "FeatureMatrix",
    "build_feature_matrix",
    "compute_bin_features",
    "HistogramDetectorConfig",
    "HistogramKLDetector",
    "kl_contributions",
    "kl_distance",
    "smooth_distributions",
    "NetReflexConfig",
    "NetReflexDetector",
    "PCAModel",
    "fit_pca_model",
    "q_statistic_threshold",
]
