"""Anomaly detectors feeding the extraction system's alarm database.

Two detector families, matching the paper's two evaluations:

* :class:`HistogramKLDetector` — the histogram/Kullback-Leibler detector
  of Kind et al. [3] (SWITCH evaluation);
* :class:`NetReflexDetector` — a PCA subspace detector over volume and
  entropy features in the style of Lakhina et al. [4], standing in for
  the commercial Guavus NetReflex system (GEANT evaluation).

Both emit :class:`Alarm` objects: a time interval, a label guess and
fine-grained — possibly incomplete — meta-data hints.
"""

from repro.detect.base import Alarm, Detector, MetadataItem
from repro.detect.entropy import (
    entropy_of_counts,
    normalized_entropy,
    sample_entropy,
)
from repro.detect.features import (
    ENTROPY_COLUMNS,
    VOLUME_COLUMNS,
    BinFeatures,
    FeatureMatrix,
    build_feature_matrix,
    compute_bin_features,
)
from repro.detect.histogram import HistogramDetectorConfig, HistogramKLDetector
from repro.detect.kl import kl_contributions, kl_distance, smooth_distributions
from repro.detect.netreflex import NetReflexConfig, NetReflexDetector
from repro.detect.pca import PCAModel, fit_pca_model, q_statistic_threshold

__all__ = [
    "Alarm",
    "Detector",
    "MetadataItem",
    "entropy_of_counts",
    "normalized_entropy",
    "sample_entropy",
    "ENTROPY_COLUMNS",
    "VOLUME_COLUMNS",
    "BinFeatures",
    "FeatureMatrix",
    "build_feature_matrix",
    "compute_bin_features",
    "HistogramDetectorConfig",
    "HistogramKLDetector",
    "kl_contributions",
    "kl_distance",
    "smooth_distributions",
    "NetReflexConfig",
    "NetReflexDetector",
    "PCAModel",
    "fit_pca_model",
    "q_statistic_threshold",
]


# -- session-facade registration ---------------------------------------------
# The detectors register themselves by name so `repro.api` dispatches
# on `[detector] name = "..."` instead of on concrete classes; plugins
# use the same `detectors.register(...)` surface.

from repro.api.registry import detectors as _detectors  # noqa: E402
from repro.flows.record import FlowFeature as _FlowFeature  # noqa: E402


def _make_netreflex(**options):
    """``netreflex`` / ``pca``: the PCA-subspace volume+entropy detector."""
    if "weightings" in options:
        options["weightings"] = tuple(options["weightings"])
    return NetReflexDetector(NetReflexConfig(**options))


def _make_kl(**options):
    """``kl``: the hashed-histogram Kullback-Leibler detector."""
    if "features" in options:
        options["features"] = tuple(
            _FlowFeature(name) for name in options["features"]
        )
    return HistogramKLDetector(HistogramDetectorConfig(**options))


_detectors.register("netreflex", _make_netreflex)
_detectors.register("pca", _make_netreflex)
_detectors.register("kl", _make_kl)
