"""Detector interface and the alarm data model.

The extraction system is detector-agnostic by design: "our system reads
from a database information about an alarm (e.g., the time interval and
the affected traffic features) and thus can be integrated with any
anomaly detection system that provides these data." :class:`Alarm`
captures exactly that contract — a time interval plus a set of
(feature, value) meta-data hints, possibly incomplete.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import DetectorError
from repro.flows.record import FlowFeature, format_feature_value
from repro.flows.trace import FlowTrace

__all__ = ["MetadataItem", "Alarm", "Detector"]


@dataclass(frozen=True, slots=True)
class MetadataItem:
    """One meta-data hint: a feature value the detector implicates.

    ``weight`` orders hints by how strongly the detector implicates the
    value (detector-specific scale; only the ordering is used).
    """

    feature: FlowFeature
    value: int
    weight: float = 1.0

    def render(self, anonymize: bool = False) -> str:
        """``feature=value`` text form."""
        rendered = format_feature_value(self.feature, self.value, anonymize)
        return f"{self.feature.value}={rendered}"


@dataclass
class Alarm:
    """A detector alarm: interval, label guess and meta-data hints."""

    alarm_id: str
    detector: str
    start: float
    end: float
    score: float
    label: str = ""
    metadata: list[MetadataItem] = field(default_factory=list)
    #: Optional PoP that triggered (per-router detectors).
    router: int | None = None

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise DetectorError(
                f"alarm interval is empty: [{self.start}, {self.end})"
            )
        if not self.alarm_id:
            raise DetectorError("alarm_id must be non-empty")

    def metadata_for(self, feature: FlowFeature) -> list[MetadataItem]:
        """Hints concerning one feature, strongest first."""
        items = [m for m in self.metadata if m.feature is feature]
        items.sort(key=lambda m: -m.weight)
        return items

    def describe(self, anonymize: bool = False) -> str:
        """One-line summary used by the console and the alarm DB."""
        hints = ", ".join(m.render(anonymize) for m in self.metadata)
        label = self.label or "anomaly"
        return (
            f"[{self.alarm_id}] {label} in [{self.start:.0f}, {self.end:.0f}) "
            f"score={self.score:.3f}"
            + (f" meta: {hints}" if hints else " meta: (none)")
        )


class Detector(abc.ABC):
    """Base class of anomaly detectors.

    Detectors are trained on a window of presumed-normal traffic and then
    evaluate a target trace bin by bin, emitting :class:`Alarm` objects.
    """

    #: Human-readable detector name recorded on alarms.
    name: str = "detector"

    @abc.abstractmethod
    def train(self, trace: FlowTrace) -> None:
        """Learn the baseline from a (presumed normal) training trace."""

    @abc.abstractmethod
    def detect(self, trace: FlowTrace) -> list[Alarm]:
        """Return alarms for the bins of ``trace`` (trained detectors only)."""

    def _require_trained(self, trained: bool) -> None:
        if not trained:
            raise DetectorError(
                f"{type(self).__name__} must be trained before detect()"
            )
