"""Entropy measures over feature histograms.

Lakhina et al. [4] — the method behind the paper's commercial detector —
detect anomalies as shifts in the *sample entropy* of traffic feature
distributions: scans disperse destination ports (entropy up) while DoS
concentrates destinations (entropy down). These helpers compute sample
and normalised entropy from the histogram counters produced by
:func:`repro.flows.aggregate.feature_histogram`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping

import numpy as np

from repro.errors import DetectorError

__all__ = [
    "sample_entropy",
    "normalized_entropy",
    "entropy_of_counts",
    "entropy_of_count_array",
]


def entropy_of_counts(counts: list[int] | tuple[int, ...]) -> float:
    """Shannon entropy (bits) of a list of non-negative counts.

    Zero counts contribute nothing; an empty or all-zero input has, by
    convention, zero entropy.
    """
    total = 0
    for count in counts:
        if count < 0:
            raise DetectorError(f"negative count {count!r}")
        total += count
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count > 0:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy


def entropy_of_count_array(counts: np.ndarray) -> float:
    """Vectorized Shannon entropy (bits) of a count array.

    The columnar counterpart of :func:`entropy_of_counts` — used by the
    table-based feature extraction, where counts come straight from
    ``np.unique``/``np.bincount``. Same conventions: zero counts
    contribute nothing, an empty or all-zero input has zero entropy.
    """
    counts = np.asarray(counts)
    if counts.size == 0:
        return 0.0
    if counts.min() < 0:
        raise DetectorError(f"negative count {counts.min()!r}")
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


def sample_entropy(histogram: Mapping[object, int] | Counter) -> float:
    """Sample entropy ``H(X) = -sum p_i log2 p_i`` of a histogram."""
    return entropy_of_counts(list(histogram.values()))


def normalized_entropy(histogram: Mapping[object, int] | Counter) -> float:
    """Entropy normalised to ``[0, 1]`` by ``log2`` of the support size.

    Lakhina et al. use normalisation so features with different numbers
    of observed values are comparable. A histogram with a single value
    (no uncertainty) has normalised entropy 0.
    """
    support = sum(1 for count in histogram.values() if count > 0)
    if support <= 1:
        return 0.0
    return sample_entropy(histogram) / math.log2(support)
