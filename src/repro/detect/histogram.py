"""Histogram-based anomaly detection with the Kullback-Leibler distance.

Implements the detector of Kind, Stoecklin and Dimitropoulos [3] as used
in the paper's SWITCH evaluation. Following the original design, feature
values are hashed into a fixed number of histogram *buckets* (IP and
port spaces are far too sparse to compare raw distributions across time
bins); each time bin's bucket histogram is compared against a trained
reference histogram with the KL distance, and a bin alarms when the
distance exceeds ``mean + k·std`` of the training distances.

Training distances are computed leave-one-out (each training bin against
the reference built from the *other* bins) so the threshold reflects the
genuine bin-to-bin variability instead of the bias of comparing a bin
against a reference that contains it.

Meta-data extraction mirrors Brauckhoff et al. [1]: the buckets with the
largest positive KL contribution are identified first, then mapped back
to the concrete feature values that dominate those buckets in the
alarmed bin — yielding "affected IP addresses or port numbers".
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.detect.base import Alarm, Detector, MetadataItem
from repro.detect.kl import kl_contributions, kl_distance
from repro.errors import DetectorError
from repro.flows.aggregate import WEIGHTINGS, feature_histogram
from repro.flows.record import FlowFeature
from repro.flows.trace import FlowTrace

__all__ = ["HistogramDetectorConfig", "HistogramKLDetector"]

_DEFAULT_FEATURES = (
    FlowFeature.SRC_IP,
    FlowFeature.DST_IP,
    FlowFeature.SRC_PORT,
    FlowFeature.DST_PORT,
)

#: Knuth's multiplicative hash constant for bucketing feature values.
_KNUTH = 2654435761


@dataclass(frozen=True)
class HistogramDetectorConfig:
    """Tunables of the histogram/KL detector.

    ``hash_buckets`` fixes the histogram width per feature (Kind et al.
    hash sparse value spaces into fixed-size histograms).
    ``threshold_sigmas`` is the alarm threshold in standard deviations
    above the mean leave-one-out training distance. A tripping feature
    contributes up to ``metadata_per_feature`` suspect values, each of
    which must explain at least ``metadata_share`` of that feature's
    total KL distance via its bucket.
    """

    features: tuple[FlowFeature, ...] = _DEFAULT_FEATURES
    weight: str = "flows"
    hash_buckets: int = 512
    threshold_sigmas: float = 3.0
    min_threshold: float = 0.01
    metadata_per_feature: int = 2
    metadata_share: float = 0.10

    def __post_init__(self) -> None:
        if not self.features:
            raise DetectorError("at least one feature is required")
        if self.weight not in WEIGHTINGS:
            raise DetectorError(
                f"unknown weighting {self.weight!r}; "
                f"expected one of {sorted(WEIGHTINGS)}"
            )
        if self.hash_buckets < 2:
            raise DetectorError("hash_buckets must be >= 2")
        if self.threshold_sigmas <= 0:
            raise DetectorError("threshold_sigmas must be positive")
        if not 0 < self.metadata_share <= 1:
            raise DetectorError("metadata_share must lie in (0, 1]")
        if self.metadata_per_feature < 1:
            raise DetectorError("metadata_per_feature must be >= 1")


class HistogramKLDetector(Detector):
    """Hashed per-feature histogram profiles with KL-distance alarming."""

    name = "histogram-kl"

    def __init__(self, config: HistogramDetectorConfig | None = None) -> None:
        self.config = config or HistogramDetectorConfig()
        self._reference: dict[FlowFeature, Counter] = {}
        self._mean: dict[FlowFeature, float] = {}
        self._std: dict[FlowFeature, float] = {}
        self._trained = False

    # -- histogram construction -------------------------------------------

    def _bucket(self, value: int) -> int:
        return (value * _KNUTH) % self.config.hash_buckets

    def bucket_values(self, values: Mapping[int, int] | Counter) -> Counter:
        """Fold a raw value histogram into the hashed bucket histogram.

        Integer weights sum exactly, so the result is independent of how
        ``values`` was accumulated (one pass over a bin's flows or a
        chunk-merged streaming counter).
        """
        histogram: Counter = Counter()
        for value, weight in values.items():
            histogram[self._bucket(value)] += weight
        return histogram

    def _window_values(
        self, flows
    ) -> dict[FlowFeature, Counter]:
        """Per-feature raw value histograms of one bin or window."""
        return {
            feature: feature_histogram(flows, feature, self.config.weight)
            for feature in self.config.features
        }

    # -- training ------------------------------------------------------------

    def train(self, trace: FlowTrace) -> None:
        """Build reference histograms and leave-one-out thresholds."""
        if trace.bin_count < 3:
            raise DetectorError(
                "histogram detector needs at least 3 training bins"
            )
        per_bin: dict[FlowFeature, list[Counter]] = {
            feature: [] for feature in self.config.features
        }
        for _, table in trace.bin_tables():
            if not len(table):
                continue
            values = self._window_values(table)
            for feature in self.config.features:
                per_bin[feature].append(
                    self.bucket_values(values[feature])
                )
        for feature in self.config.features:
            histograms = per_bin[feature]
            if len(histograms) < 3:
                raise DetectorError(
                    f"fewer than 3 non-empty training bins for "
                    f"{feature.value}"
                )
            reference: Counter = Counter()
            for histogram in histograms:
                reference.update(histogram)
            self._reference[feature] = reference
            distances = []
            for histogram in histograms:
                held_out = reference.copy()
                held_out.subtract(histogram)
                held_out += Counter()  # drop zero/negative buckets
                if held_out:
                    distances.append(kl_distance(histogram, held_out))
            if not distances:
                raise DetectorError(
                    f"could not derive training distances for "
                    f"{feature.value}"
                )
            self._mean[feature] = statistics.fmean(distances)
            self._std[feature] = (
                statistics.pstdev(distances) if len(distances) > 1 else 0.0
            )
        self._trained = True

    def threshold(self, feature: FlowFeature) -> float:
        """Alarm threshold for one feature's KL distance."""
        self._require_trained(self._trained)
        computed = (
            self._mean[feature]
            + self.config.threshold_sigmas * self._std[feature]
        )
        return max(computed, self.config.min_threshold)

    # -- detection -------------------------------------------------------------

    def detect(self, trace: FlowTrace) -> list[Alarm]:
        """Alarm every bin whose KL distance trips any feature threshold."""
        self._require_trained(self._trained)
        alarms = []
        for index, table in trace.bin_tables():
            if not len(table):
                continue
            start, end = trace.bin_interval(index)
            alarm = self.evaluate_window(
                index, start, end, self._window_values(table)
            )
            if alarm is not None:
                alarms.append(alarm)
        return alarms

    def evaluate_window(
        self,
        index: int,
        start: float,
        end: float,
        values: Mapping[FlowFeature, Counter],
    ) -> Alarm | None:
        """Evaluate one window from per-feature raw value histograms.

        The streaming entry point: ``values`` may come from incremental
        accumulators; the batch path feeds it the histograms of a trace
        bin. Both run the identical scoring and attribution code, so
        streaming and batch detection agree window for window.
        """
        self._require_trained(self._trained)
        tripping: list[tuple[FlowFeature, float, Counter]] = []
        max_score = 0.0
        for feature in self.config.features:
            histogram = self.bucket_values(values.get(feature, Counter()))
            distance = kl_distance(histogram, self._reference[feature])
            limit = self.threshold(feature)
            if distance > limit:
                tripping.append((feature, distance, histogram))
                std = self._std[feature] or 1e-9
                max_score = max(
                    max_score, (distance - self._mean[feature]) / std
                )
        if not tripping:
            return None

        metadata = self._build_metadata(tripping, values)
        feature_names = "+".join(f.value for f, _, _ in tripping)
        return Alarm(
            alarm_id=f"{self.name}-bin{index}",
            detector=self.name,
            start=start,
            end=end,
            score=max_score,
            label=f"KL shift in {feature_names}",
            metadata=metadata,
        )

    def _build_metadata(
        self,
        tripping: list[tuple[FlowFeature, float, Counter]],
        values: Mapping[FlowFeature, Counter],
    ) -> list[MetadataItem]:
        """Map suspicious buckets back to dominant concrete values."""
        metadata = []
        for feature, distance, histogram in tripping:
            contributions = kl_contributions(
                histogram, self._reference[feature]
            )
            suspicious = set()
            for bucket, share in contributions:
                if len(suspicious) >= self.config.metadata_per_feature:
                    break
                if share <= 0 or distance <= 0:
                    break
                if share / distance < self.config.metadata_share:
                    break
                suspicious.add(bucket)
            if not suspicious:
                continue
            # Dominant raw values inside the suspicious buckets (ties
            # break on the smaller value, independent of counter order).
            ranked = sorted(
                (
                    (value, weight)
                    for value, weight in values[feature].items()
                    if self._bucket(value) in suspicious
                ),
                key=lambda kv: (-kv[1], kv[0]),
            )
            for value, weight in ranked[: self.config.metadata_per_feature]:
                metadata.append(
                    MetadataItem(
                        feature=feature, value=value, weight=float(weight)
                    )
                )
        metadata.sort(key=lambda item: -item.weight)
        return metadata
