"""PCA subspace anomaly detection (Lakhina, Crovella, Diot [4]).

The commercial detector the paper integrates with (Guavus NetReflex) is
"based on a well-known anomaly detector using Principal Component
Analysis" — the subspace method: traffic feature timeseries form a
matrix whose dominant principal components span the *normal* subspace;
the squared norm of a bin's projection onto the residual subspace (the
squared prediction error, SPE) spikes under anomalies, with the
Q-statistic of Jackson & Mudholkar giving the detection threshold.

This module implements the bare subspace machinery on numpy arrays; the
:mod:`repro.detect.netreflex` wrapper feeds it traffic feature matrices
and turns alarmed bins into :class:`~repro.detect.base.Alarm` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DetectorError

__all__ = ["PCAModel", "fit_pca_model", "q_statistic_threshold"]


def _normal_quantile(alpha: float) -> float:
    """Upper ``alpha`` quantile of the standard normal distribution.

    Uses scipy when present, else the Acklam rational approximation
    (max relative error ~1.15e-9, ample for thresholding).
    """
    if not 0 < alpha < 1:
        raise DetectorError(f"alpha must lie in (0, 1): {alpha!r}")
    try:
        from scipy.stats import norm

        return float(norm.ppf(1.0 - alpha))
    except ImportError:  # pragma: no cover - scipy installed in CI
        return _acklam_ppf(1.0 - alpha)


def _acklam_ppf(p: float) -> float:  # pragma: no cover - scipy fallback
    a = (-3.969683028665376e01, 2.209460984245205e02,
         -2.759285104469687e02, 1.383577518672690e02,
         -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02,
         -1.556989798598866e02, 6.680131188771972e01,
         -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e00, -2.549732539343734e00,
         4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e00, 3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
                + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3])
                                * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)


def q_statistic_threshold(
    residual_eigenvalues: np.ndarray, alpha: float = 0.001
) -> float:
    """Jackson-Mudholkar Q-statistic threshold at false-alarm rate ``alpha``.

    ``residual_eigenvalues`` are the covariance eigenvalues of the
    residual (non-principal) subspace. Returns the SPE value above which
    a bin is declared anomalous.
    """
    lambdas = np.asarray(residual_eigenvalues, dtype=float)
    lambdas = lambdas[lambdas > 1e-12]
    if lambdas.size == 0:
        # Degenerate residual subspace: any non-zero SPE is anomalous.
        return 1e-12
    phi1 = float(np.sum(lambdas))
    phi2 = float(np.sum(lambdas**2))
    phi3 = float(np.sum(lambdas**3))
    h0 = 1.0 - (2.0 * phi1 * phi3) / (3.0 * phi2**2)
    if h0 <= 0:
        h0 = 1e-3
    c_alpha = _normal_quantile(alpha)
    term = (
        c_alpha * math.sqrt(2.0 * phi2 * h0**2) / phi1
        + 1.0
        + phi2 * h0 * (h0 - 1.0) / phi1**2
    )
    if term <= 0:
        return phi1
    return phi1 * term ** (1.0 / h0)


@dataclass
class PCAModel:
    """A fitted subspace model: standardisation + principal subspace."""

    mean: np.ndarray
    std: np.ndarray
    components: np.ndarray  # (n_features, k) principal directions
    eigenvalues: np.ndarray  # all covariance eigenvalues, descending
    n_components: int
    spe_threshold: float

    def standardize(self, matrix: np.ndarray) -> np.ndarray:
        """Apply the training z-score transform to ``matrix``."""
        data = np.asarray(matrix, dtype=float)
        if data.ndim != 2 or data.shape[1] != self.mean.shape[0]:
            raise DetectorError(
                f"matrix with {data.shape} does not match model with "
                f"{self.mean.shape[0]} features"
            )
        return (data - self.mean) / self.std

    def spe(self, matrix: np.ndarray) -> np.ndarray:
        """Squared prediction error of each row of ``matrix``.

        The SPE is the squared norm of the row's projection onto the
        residual subspace.
        """
        z = self.standardize(matrix)
        principal = z @ self.components  # (rows, k)
        modelled = principal @ self.components.T
        residual = z - modelled
        return np.einsum("ij,ij->i", residual, residual)

    def anomalous_rows(self, matrix: np.ndarray) -> np.ndarray:
        """Boolean mask of rows whose SPE exceeds the Q threshold."""
        return self.spe(matrix) > self.spe_threshold


def fit_pca_model(
    training: np.ndarray,
    variance_captured: float = 0.90,
    max_components: int | None = None,
    alpha: float = 0.001,
) -> PCAModel:
    """Fit the subspace model on a (bins × features) training matrix.

    The principal subspace keeps the smallest number of components whose
    cumulative captured variance reaches ``variance_captured`` (bounded
    by ``max_components``); the Q-statistic threshold is derived from the
    residual eigenvalues at false-alarm rate ``alpha``.
    """
    data = np.asarray(training, dtype=float)
    if data.ndim != 2:
        raise DetectorError("training matrix must be 2-D")
    rows, cols = data.shape
    if rows < 3:
        raise DetectorError(
            f"need at least 3 training bins, got {rows}"
        )
    if not 0 < variance_captured <= 1:
        raise DetectorError(
            f"variance_captured must lie in (0, 1]: {variance_captured!r}"
        )
    mean = data.mean(axis=0)
    std = data.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    z = (data - mean) / std

    # Covariance eigendecomposition via SVD of the centred matrix.
    _, singular_values, vt = np.linalg.svd(z, full_matrices=False)
    eigenvalues = singular_values**2 / max(1, rows - 1)
    total = float(np.sum(eigenvalues))
    if total <= 0:
        raise DetectorError("training matrix has zero variance")

    cumulative = np.cumsum(eigenvalues) / total
    k = int(np.searchsorted(cumulative, variance_captured) + 1)
    k = min(k, cols - 1 if cols > 1 else 1)  # keep a residual subspace
    if max_components is not None:
        if max_components < 1:
            raise DetectorError("max_components must be >= 1")
        k = min(k, max_components)

    components = vt[:k].T  # (features, k)
    residual_eigenvalues = eigenvalues[k:]
    threshold = q_statistic_threshold(residual_eigenvalues, alpha=alpha)
    return PCAModel(
        mean=mean,
        std=std,
        components=components,
        eigenvalues=eigenvalues,
        n_components=k,
        spe_threshold=threshold,
    )
