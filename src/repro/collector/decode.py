"""Wire decoders for the UDP collector: NetFlow v5, v9 and IPFIX.

The listener hot path hands every datagram to :func:`decode_datagram`
and gets back a :class:`DecodedDatagram`: a ``FLOW_DTYPE`` row array
ready for :class:`~repro.flows.table.FlowTable` batching plus the
accounting the exporter tracker needs (sequence position, malformed
count, template activity). Three formats share that surface:

* **NetFlow v5** — the fixed 48-byte record layout already implemented
  by :mod:`repro.flows.netflow_v5`. The collector reuses that codec's
  structs and semantics but decodes *vectorized*: one
  ``np.frombuffer`` over the record region and a handful of column
  assignments replace the per-record ``struct.unpack`` loop, which is
  what makes 100k+ flows/s on a single listener thread possible.
  Truncated trailing records are counted malformed, never raised
  (the tolerant contract of
  :func:`repro.flows.netflow_v5.decode_packet_tolerant`).

* **NetFlow v9 / IPFIX** — template-driven sets. Templates stream in
  the same UDP channel as data, so a :class:`TemplateCache` (one per
  exporter, owned by :mod:`repro.collector.exporters`) remembers
  template definitions and buffers data sets that arrive before their
  template — bounded, with an expiry sweep, because a dead exporter
  must not pin memory forever.

Timestamp convention: all three formats reconstruct absolute times the
same way the file codec does — ``boot_time + sysuptime_ms / 1000.0``
for uptime-relative fields (v5 first/last, v9 FIRST/LAST_SWITCHED),
absolute values passed through for IPFIX millisecond/second elements.
A replayed capture therefore decodes to byte-identical ``start``/
``end`` columns regardless of which path (file reader or UDP
listener) consumed it.

Encoders for v9/IPFIX live here too. Production only receives, but
the golden-datagram fixtures, the Hypothesis roundtrip suite and the
loopback benchmark all need to *produce* well-formed template and
data sets, and keeping the two directions adjacent is the cheapest
way to keep them honest.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import CodecError
from repro.flows import netflow_v5 as v5
from repro.flows.table import FLOW_DTYPE

__all__ = [
    "NETFLOW_V9_VERSION",
    "IPFIX_VERSION",
    "V9_HEADER_SIZE",
    "IPFIX_HEADER_SIZE",
    "ELEMENT_COLUMNS",
    "DecodedDatagram",
    "Template",
    "TemplateCache",
    "peek_exporter",
    "decode_datagram",
    "decode_v5_datagram",
    "decode_template_datagram",
    "encode_v9_datagram",
    "encode_ipfix_datagram",
    "encode_template_set",
    "encode_data_set",
]

NETFLOW_V9_VERSION = 9
IPFIX_VERSION = 10

#: v9: version(2) count(2) sys_uptime(4) unix_secs(4) sequence(4) source_id(4)
_V9_HEADER = struct.Struct("!HHIIII")
V9_HEADER_SIZE = _V9_HEADER.size  # 20

#: IPFIX: version(2) length(2) export_time(4) sequence(4) domain(4)
_IPFIX_HEADER = struct.Struct("!HHIII")
IPFIX_HEADER_SIZE = _IPFIX_HEADER.size  # 16

_SET_HEADER = struct.Struct("!HH")  # set_id(2) length(2)

#: Set ids below this are reserved; data sets reference template ids
#: from 256 up (RFC 7011 §3.4.3 / Cisco v9 spec).
MIN_TEMPLATE_ID = 256

# Reserved set ids: (template set, options-template set) per version.
_V9_TEMPLATE_SET = 0
_V9_OPTIONS_SET = 1
_IPFIX_TEMPLATE_SET = 2
_IPFIX_OPTIONS_SET = 3

#: IPFIX enterprise bit on the field type (RFC 7011 §3.2).
_ENTERPRISE_BIT = 0x8000

#: IANA information elements → ``FLOW_DTYPE`` columns. Direct integer
#: copies; timestamp elements (21/22/150-153) are handled specially.
ELEMENT_COLUMNS: dict[int, str] = {
    1: "bytes",          # octetDeltaCount / IN_BYTES
    2: "packets",        # packetDeltaCount / IN_PKTS
    4: "proto",          # protocolIdentifier
    6: "tcp_flags",      # tcpControlBits
    7: "src_port",       # sourceTransportPort
    8: "src_ip",         # sourceIPv4Address
    10: "router",        # ingressInterface / INPUT_SNMP
    11: "dst_port",      # destinationTransportPort
    12: "dst_ip",        # destinationIPv4Address
    34: "sampling_rate",  # samplingInterval
}

_LAST_SWITCHED = 21    # sysuptime ms
_FIRST_SWITCHED = 22   # sysuptime ms
_FLOW_START_SECONDS = 150
_FLOW_END_SECONDS = 151
_FLOW_START_MS = 152
_FLOW_END_MS = 153

_TIME_ELEMENTS = {
    _LAST_SWITCHED, _FIRST_SWITCHED,
    _FLOW_START_SECONDS, _FLOW_END_SECONDS,
    _FLOW_START_MS, _FLOW_END_MS,
}

#: Clamp masks/ceilings per column so hostile wire values can never
#: violate ``FlowTable`` column bounds (the listener must not raise).
_COLUMN_MASKS = {
    "src_ip": 0xFFFFFFFF,
    "dst_ip": 0xFFFFFFFF,
    "src_port": 0xFFFF,
    "dst_port": 0xFFFF,
    "proto": 0xFF,
    "tcp_flags": 0xFF,
    "router": 0xFFFFFFFF,
    "sampling_rate": 0xFFFFFFFF,
}
_I64_MAX = 2**63 - 1

#: The 48-byte v5 record region as a big-endian numpy view; field
#: order mirrors ``netflow_v5._RECORD``. Decoding a datagram is one
#: ``np.frombuffer`` over this dtype plus column copies.
_V5_WIRE_DTYPE = np.dtype([
    ("src_ip", ">u4"),
    ("dst_ip", ">u4"),
    ("nexthop", ">u4"),
    ("input", ">u2"),
    ("output", ">u2"),
    ("packets", ">u4"),
    ("octets", ">u4"),
    ("first", ">u4"),
    ("last", ">u4"),
    ("src_port", ">u2"),
    ("dst_port", ">u2"),
    ("pad1", "u1"),
    ("tcp_flags", "u1"),
    ("proto", "u1"),
    ("tos", "u1"),
    ("src_as", ">u2"),
    ("dst_as", ">u2"),
    ("src_mask", "u1"),
    ("dst_mask", "u1"),
    ("pad2", ">u2"),
])
assert _V5_WIRE_DTYPE.itemsize == v5.RECORD_SIZE


@dataclass(slots=True)
class DecodedDatagram:
    """One datagram's worth of decoded rows plus accounting facts.

    ``seq``/``seq_units`` feed per-exporter loss detection: the next
    datagram from the same exporter is expected to carry sequence
    ``seq + seq_units``. Units differ by format — v5 counts flows,
    v9 counts export packets, IPFIX counts data records. When the
    decoder could not establish how many records the exporter actually
    sent (IPFIX data buffered without its template), ``seq_reliable``
    is False and the tracker re-baselines instead of counting a
    phantom gap.
    """

    version: int
    domain: int
    seq: int
    seq_units: int
    rows: np.ndarray
    malformed: int = 0
    seq_reliable: bool = True
    template_sets: int = 0
    buffered_sets: int = 0
    dropped_sets: int = 0


@dataclass(slots=True, frozen=True)
class Template:
    """A decoded v9/IPFIX template: field layout of one record shape."""

    template_id: int
    #: ``(element_id, length)`` pairs in wire order; enterprise-scoped
    #: IPFIX elements carry ``element_id = -1`` (decoded and skipped).
    fields: tuple[tuple[int, int], ...]

    @property
    def record_size(self) -> int:
        return sum(length for _, length in self.fields)


class TemplateCache:
    """Per-exporter template store with a bounded pending-set buffer.

    Data sets that reference an unknown template are remembered (raw
    bytes plus their header context) until either the template arrives
    — at which point :meth:`install` returns them for decoding — or
    they age out / overflow the bound and are dropped with a count.
    """

    def __init__(
        self,
        max_pending: int = 32,
        pending_expiry: float = 300.0,
    ) -> None:
        self.templates: dict[int, Template] = {}
        self.max_pending = max_pending
        self.pending_expiry = pending_expiry
        #: ``template_id -> [(deadline, payload, header_ctx), ...]``
        self._pending: dict[int, list[tuple[float, bytes, tuple]]] = {}
        self._pending_count = 0
        self.dropped = 0

    def get(self, template_id: int) -> Template | None:
        return self.templates.get(template_id)

    def install(
        self, template: Template
    ) -> list[tuple[bytes, tuple]]:
        """Store a template; return buffered sets now decodable."""
        self.templates[template.template_id] = template
        ready = self._pending.pop(template.template_id, [])
        self._pending_count -= len(ready)
        return [(payload, ctx) for _, payload, ctx in ready]

    def buffer(
        self, template_id: int, payload: bytes, ctx: tuple, now: float
    ) -> bool:
        """Hold a data set until its template shows up.

        Returns False (and counts a drop) when the per-exporter bound
        is already full — an exporter that never sends templates must
        not grow memory without limit.
        """
        if self._pending_count >= self.max_pending:
            self.dropped += 1
            return False
        deadline = now + self.pending_expiry
        self._pending.setdefault(template_id, []).append(
            (deadline, payload, ctx)
        )
        self._pending_count += 1
        return True

    def sweep(self, now: float) -> int:
        """Drop pending sets past their deadline; returns the count."""
        expired = 0
        for tid in list(self._pending):
            kept = [
                item for item in self._pending[tid] if item[0] > now
            ]
            expired += len(self._pending[tid]) - len(kept)
            if kept:
                self._pending[tid] = kept
            else:
                del self._pending[tid]
        self._pending_count -= expired
        self.dropped += expired
        return expired

    @property
    def pending_count(self) -> int:
        return self._pending_count


def peek_exporter(data: bytes) -> tuple[int, int]:
    """``(version, observation_domain)`` from a datagram's first bytes.

    The exporter key must be known *before* full decoding (the
    template cache is per-exporter), so this reads only the header.
    For v5 the domain analog is ``engine_type << 8 | engine_id``.
    """
    if len(data) < 2:
        raise CodecError(
            f"runt datagram: {len(data)} bytes < version field"
        )
    version = (data[0] << 8) | data[1]
    if version == v5.NETFLOW_V5_VERSION:
        if len(data) < v5.HEADER_SIZE:
            raise CodecError(
                f"truncated packet: {len(data)} bytes < header "
                f"{v5.HEADER_SIZE}"
            )
        return version, (data[20] << 8) | data[21]
    if version == NETFLOW_V9_VERSION:
        if len(data) < V9_HEADER_SIZE:
            raise CodecError(
                f"truncated v9 header: {len(data)} < {V9_HEADER_SIZE}"
            )
        return version, int.from_bytes(data[16:20], "big")
    if version == IPFIX_VERSION:
        if len(data) < IPFIX_HEADER_SIZE:
            raise CodecError(
                f"truncated IPFIX header: {len(data)} < "
                f"{IPFIX_HEADER_SIZE}"
            )
        return version, int.from_bytes(data[12:16], "big")
    raise CodecError(f"unsupported NetFlow version {version}")


# -- NetFlow v5 (vectorized) --------------------------------------------------


def decode_v5_datagram(
    data: bytes, boot_time: float = 0.0
) -> DecodedDatagram:
    """Vectorized tolerant decode of one v5 datagram.

    Produces the same column values as running every record through
    :func:`repro.flows.netflow_v5.decode_packet` — asserted by the
    equivalence tests — at a fraction of the per-record cost.
    """
    if len(data) < v5.HEADER_SIZE:
        raise CodecError(
            f"truncated packet: {len(data)} bytes < header "
            f"{v5.HEADER_SIZE}"
        )
    (
        version, count, _sys_uptime, _unix_secs, _unix_nsecs,
        flow_sequence, engine_type, engine_id, sampling,
    ) = v5._HEADER.unpack_from(data, 0)
    if version != v5.NETFLOW_V5_VERSION:
        raise CodecError(f"unsupported NetFlow version {version}")
    whole = min(count, (len(data) - v5.HEADER_SIZE) // v5.RECORD_SIZE)
    sampling_mode = sampling >> 14
    sampling_interval = sampling & v5._SAMPLING_INTERVAL_MASK
    if sampling_mode == 0 or sampling_interval == 0:
        sampling_interval = 1
    wire = np.frombuffer(
        data, dtype=_V5_WIRE_DTYPE, count=whole, offset=v5.HEADER_SIZE
    )
    out = np.empty(whole, dtype=FLOW_DTYPE)
    out["src_ip"] = wire["src_ip"]
    out["dst_ip"] = wire["dst_ip"]
    out["src_port"] = wire["src_port"]
    out["dst_port"] = wire["dst_port"]
    out["proto"] = wire["proto"]
    out["tcp_flags"] = wire["tcp_flags"]
    out["router"] = wire["input"]
    out["sampling_rate"] = sampling_interval
    out["packets"] = wire["packets"]
    out["bytes"] = wire["octets"]
    out["start"] = boot_time + wire["first"].astype("f8") / 1000.0
    out["end"] = boot_time + wire["last"].astype("f8") / 1000.0
    return DecodedDatagram(
        version=version,
        domain=(engine_type << 8) | engine_id,
        seq=flow_sequence,
        # v5 sequences count flows as the *exporter* emitted them —
        # records lost to truncation were still sent, so the declared
        # count (not the decoded count) advances the expectation.
        seq_units=count,
        rows=out,
        malformed=count - whole,
    )


# -- NetFlow v9 / IPFIX -------------------------------------------------------


def _parse_templates(
    payload: bytes, ipfix: bool
) -> tuple[list[Template], int]:
    """Parse a template set body; returns templates + malformed count."""
    templates: list[Template] = []
    malformed = 0
    offset = 0
    # Trailing padding shorter than a template header is legal.
    while offset + 4 <= len(payload):
        template_id, field_count = struct.unpack_from(
            "!HH", payload, offset
        )
        offset += 4
        if template_id == 0 and field_count == 0:
            break  # padding
        fields: list[tuple[int, int]] = []
        ok = True
        for _ in range(field_count):
            if offset + 4 > len(payload):
                ok = False
                break
            ftype, flen = struct.unpack_from("!HH", payload, offset)
            offset += 4
            if ipfix and ftype & _ENTERPRISE_BIT:
                if offset + 4 > len(payload):
                    ok = False
                    break
                offset += 4  # enterprise number: decoded past, ignored
                ftype = -1
            fields.append((ftype, flen))
        if not ok or template_id < MIN_TEMPLATE_ID:
            malformed += 1
            break
        template = Template(template_id, tuple(fields))
        if template.record_size == 0:
            malformed += 1
            continue
        templates.append(template)
    return templates, malformed


def _decode_data_records(
    payload: bytes,
    template: Template,
    boot_time: float,
    export_secs: int,
) -> list[tuple]:
    """Decode the fixed-size records a data set carries.

    Anything shorter than one record at the tail is padding (RFC 7011
    allows up to 3 bytes; broken exporters pad more — tolerated).
    """
    size = template.record_size
    rows: list[tuple] = []
    offset = 0
    while offset + size <= len(payload):
        values = {
            "src_ip": 0, "dst_ip": 0, "src_port": 0, "dst_port": 0,
            "proto": 0, "tcp_flags": 0, "router": 0,
            "sampling_rate": 1, "packets": 0, "bytes": 0,
        }
        start: float | None = None
        end: float | None = None
        pos = offset
        for element, length in template.fields:
            raw = int.from_bytes(payload[pos:pos + length], "big")
            pos += length
            if element in _TIME_ELEMENTS:
                if element == _FIRST_SWITCHED:
                    start = boot_time + raw / 1000.0
                elif element == _LAST_SWITCHED:
                    end = boot_time + raw / 1000.0
                elif element == _FLOW_START_SECONDS:
                    start = float(raw)
                elif element == _FLOW_END_SECONDS:
                    end = float(raw)
                elif element == _FLOW_START_MS:
                    start = raw / 1000.0
                else:
                    end = raw / 1000.0
                continue
            column = ELEMENT_COLUMNS.get(element)
            if column is None:
                continue
            mask = _COLUMN_MASKS.get(column)
            values[column] = raw & mask if mask else min(raw, _I64_MAX)
        if values["sampling_rate"] == 0:
            values["sampling_rate"] = 1
        if start is None:
            start = end if end is not None else float(export_secs)
        if end is None:
            end = start
        rows.append((
            values["src_ip"], values["dst_ip"],
            values["src_port"], values["dst_port"],
            values["proto"], values["tcp_flags"],
            values["router"], values["sampling_rate"],
            values["packets"], values["bytes"],
            start, end,
        ))
        offset += size
    return rows


def decode_template_datagram(
    data: bytes,
    boot_time: float,
    cache: TemplateCache,
    now: float = 0.0,
) -> DecodedDatagram:
    """Decode one v9 or IPFIX datagram against an exporter's cache.

    Sets are processed in wire order. A data set whose template is
    unknown is buffered in ``cache`` (bounded); a template arrival
    immediately decodes whatever it unblocks, so out-of-order
    template/data interleavings converge to the same rows.
    """
    version = (data[0] << 8) | data[1] if len(data) >= 2 else -1
    if version == NETFLOW_V9_VERSION:
        if len(data) < V9_HEADER_SIZE:
            raise CodecError(
                f"truncated v9 header: {len(data)} < {V9_HEADER_SIZE}"
            )
        (_, _count, _uptime, export_secs, sequence, domain) = \
            _V9_HEADER.unpack_from(data, 0)
        offset = V9_HEADER_SIZE
        limit = len(data)
        template_set_id = _V9_TEMPLATE_SET
        options_set_id = _V9_OPTIONS_SET
        ipfix = False
    elif version == IPFIX_VERSION:
        if len(data) < IPFIX_HEADER_SIZE:
            raise CodecError(
                f"truncated IPFIX header: {len(data)} < "
                f"{IPFIX_HEADER_SIZE}"
            )
        (_, length, export_secs, sequence, domain) = \
            _IPFIX_HEADER.unpack_from(data, 0)
        offset = IPFIX_HEADER_SIZE
        limit = min(len(data), length)
        template_set_id = _IPFIX_TEMPLATE_SET
        options_set_id = _IPFIX_OPTIONS_SET
        ipfix = True
    else:
        raise CodecError(f"unsupported NetFlow version {version}")

    result = DecodedDatagram(
        version=version, domain=domain, seq=sequence,
        seq_units=0, rows=np.empty(0, dtype=FLOW_DTYPE),
    )
    chunks: list[np.ndarray] = []
    records = 0
    while offset + _SET_HEADER.size <= limit:
        set_id, set_len = _SET_HEADER.unpack_from(data, offset)
        if set_len < _SET_HEADER.size \
                or offset + set_len > limit:
            result.malformed += 1
            result.seq_reliable = ipfix is False
            break
        payload = data[offset + _SET_HEADER.size:offset + set_len]
        offset += set_len
        if set_id == template_set_id:
            templates, bad = _parse_templates(payload, ipfix)
            result.malformed += bad
            result.template_sets += len(templates)
            for template in templates:
                for pending, ctx in cache.install(template):
                    rows = _decode_data_records(
                        pending, template, boot_time, ctx[0]
                    )
                    if rows:
                        chunks.append(np.array(rows, dtype=FLOW_DTYPE))
        elif set_id == options_set_id:
            continue  # scope/option metadata carries no flow rows
        elif set_id >= MIN_TEMPLATE_ID:
            template = cache.get(set_id)
            if template is None:
                if cache.buffer(set_id, payload, (export_secs,), now):
                    result.buffered_sets += 1
                else:
                    result.dropped_sets += 1
                if ipfix:
                    # Buffered records still advanced the exporter's
                    # sequence by an amount we cannot know yet.
                    result.seq_reliable = False
                continue
            rows = _decode_data_records(
                payload, template, boot_time, export_secs
            )
            records += len(rows)
            if rows:
                chunks.append(np.array(rows, dtype=FLOW_DTYPE))
        else:
            result.malformed += 1
    if chunks:
        result.rows = (
            chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        )
    # v9 sequences count export packets; IPFIX counts data records.
    result.seq_units = 1 if not ipfix else records
    return result


def decode_datagram(
    data: bytes,
    boot_time: float,
    cache: TemplateCache | None = None,
    now: float = 0.0,
) -> DecodedDatagram:
    """Decode any supported datagram (v5 needs no cache)."""
    if len(data) >= 2 and (data[0] << 8) | data[1] \
            == v5.NETFLOW_V5_VERSION:
        return decode_v5_datagram(data, boot_time)
    if cache is None:
        raise CodecError("v9/IPFIX decoding needs a template cache")
    return decode_template_datagram(data, boot_time, cache, now=now)


# -- encoders (fixtures, roundtrip tests, benchmark) --------------------------


def encode_template_set(
    templates: Iterable[Template], ipfix: bool = False
) -> bytes:
    """One template set (v9 set id 0, IPFIX set id 2)."""
    body = bytearray()
    for template in templates:
        body += struct.pack(
            "!HH", template.template_id, len(template.fields)
        )
        for element, length in template.fields:
            body += struct.pack("!HH", element & 0x7FFF, length)
    set_id = _IPFIX_TEMPLATE_SET if ipfix else _V9_TEMPLATE_SET
    return _SET_HEADER.pack(set_id, 4 + len(body)) + bytes(body)


def encode_data_set(
    template: Template,
    rows: Sequence[Mapping[int, int]],
) -> bytes:
    """A data set: per row, each template element's value big-endian.

    ``rows`` maps element id → integer value; elements the row omits
    encode as zero. Values are masked to the field width (what a real
    exporter register would do).
    """
    body = bytearray()
    for row in rows:
        for element, length in template.fields:
            value = int(row.get(element, 0))
            body += (value & ((1 << (8 * length)) - 1)).to_bytes(
                length, "big"
            )
    return _SET_HEADER.pack(
        template.template_id, 4 + len(body)
    ) + bytes(body)


def encode_v9_datagram(
    sets: Sequence[bytes],
    sequence: int = 0,
    source_id: int = 0,
    sys_uptime_ms: int = 0,
    export_secs: int = 0,
    count: int | None = None,
) -> bytes:
    """Wrap encoded sets in a v9 export header."""
    if count is None:
        count = len(sets)
    return _V9_HEADER.pack(
        NETFLOW_V9_VERSION, count, sys_uptime_ms, export_secs,
        sequence & 0xFFFFFFFF, source_id,
    ) + b"".join(sets)


def encode_ipfix_datagram(
    sets: Sequence[bytes],
    sequence: int = 0,
    domain: int = 0,
    export_secs: int = 0,
) -> bytes:
    """Wrap encoded sets in an IPFIX message header."""
    body = b"".join(sets)
    return _IPFIX_HEADER.pack(
        IPFIX_VERSION, IPFIX_HEADER_SIZE + len(body), export_secs,
        sequence & 0xFFFFFFFF, domain,
    ) + body
