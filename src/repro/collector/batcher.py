"""Row batching between the datagram decoder and the stream engine.

A datagram carries at most ~30 v5 records; feeding the engine one
:class:`~repro.flows.table.FlowTable` per datagram would drown it in
per-chunk overhead (ring routing, watermark updates, IPC frames under
``ShardedStreamEngine``). The :class:`ChunkBatcher` accumulates the
decoder's raw ``FLOW_DTYPE`` arrays and flushes one concatenated table
when either trigger fires:

* **size** — the batch reached ``chunk_rows`` (throughput path);
* **age** — ``max_batch_seconds`` passed since the first row of the
  batch arrived (latency path: a trickle of datagrams still reaches
  the detector within a bounded delay, and the engine watermark keeps
  advancing).

The batcher is deliberately queue-agnostic: it hands finished tables
to an ``on_flush`` callback and reports whether the callback accepted
them, so the listener owns the bounded-queue/drop policy in one place.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.flows.table import FLOW_DTYPE, FlowTable

__all__ = ["ChunkBatcher"]


class ChunkBatcher:
    """Accumulate decoded row arrays into size/age-bounded tables."""

    def __init__(
        self,
        on_flush: Callable[[FlowTable, str], bool],
        chunk_rows: int = 8192,
        max_batch_seconds: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.on_flush = on_flush
        self.chunk_rows = max(1, int(chunk_rows))
        self.max_batch_seconds = max_batch_seconds
        self._clock = clock
        self._parts: list[np.ndarray] = []
        self._rows = 0
        self._oldest: float | None = None
        self.flushes = 0
        self.age_flushes = 0

    @property
    def pending_rows(self) -> int:
        return self._rows

    def add(self, rows: np.ndarray) -> None:
        """Queue one decoded array; size-flush when the batch fills."""
        if not len(rows):
            return
        if self._oldest is None:
            self._oldest = self._clock()
        self._parts.append(rows)
        self._rows += len(rows)
        while self._rows >= self.chunk_rows:
            self._flush_rows(self.chunk_rows, "size")

    def poll(self, now: float | None = None) -> bool:
        """Age-flush if the oldest pending row has waited long enough."""
        if self._oldest is None:
            return False
        if now is None:
            now = self._clock()
        if now - self._oldest < self.max_batch_seconds:
            return False
        self.age_flushes += 1
        self._flush_rows(self._rows, "age")
        return True

    def flush(self, reason: str = "final") -> bool:
        """Flush whatever is pending (listener shutdown)."""
        if not self._rows:
            return False
        self._flush_rows(self._rows, reason)
        return True

    def _flush_rows(self, rows: int, reason: str) -> None:
        take: list[np.ndarray] = []
        taken = 0
        while taken < rows and self._parts:
            part = self._parts[0]
            need = rows - taken
            if len(part) <= need:
                take.append(self._parts.pop(0))
                taken += len(part)
            else:
                take.append(part[:need])
                self._parts[0] = part[need:]
                taken += need
        self._rows -= taken
        self._oldest = None if not self._rows else self._clock()
        data = take[0] if len(take) == 1 else np.concatenate(take)
        # Wire decoding already masked every column to its legal
        # range, so the validating from_columns pass is unnecessary.
        self.flushes += 1
        self.on_flush(FlowTable(np.ascontiguousarray(data)), reason)
