"""repro.collector — the wire ingest plane: a NetFlow UDP collector.

The paper's deployment receives NetFlow from GEANT routers; every
other source in this repo reads files, tables or synth scenarios.
This package is the missing first mile: a stdlib-only UDP listener
(:mod:`~repro.collector.listener`) that decodes NetFlow v5, v9 and
IPFIX datagrams (:mod:`~repro.collector.decode`), tracks per-exporter
sequence/template state (:mod:`~repro.collector.exporters`) and
batches rows into :class:`~repro.flows.table.FlowTable` chunks
(:mod:`~repro.collector.batcher`) for the stream engines.

Importing the package registers ``SourceSpec(kind="udp")`` with
:data:`repro.api.registry.sources`, so::

    [source]
    kind = "udp"
    [source.options]
    port = 0            # ephemeral; the bound port lands in the summary

    $ repro run collector.toml

stands up a full collector→detect→archive→serve pipeline with no new
entry point.
"""

from repro.collector.batcher import ChunkBatcher
from repro.collector.decode import (
    DecodedDatagram,
    Template,
    TemplateCache,
    decode_datagram,
)
from repro.collector.exporters import ExporterState, ExporterTable
from repro.collector.listener import (
    FlowCollector,
    UdpSource,
    read_recorded_datagrams,
    send_datagrams,
)

__all__ = [
    "ChunkBatcher",
    "DecodedDatagram",
    "Template",
    "TemplateCache",
    "decode_datagram",
    "ExporterState",
    "ExporterTable",
    "FlowCollector",
    "UdpSource",
    "read_recorded_datagrams",
    "send_datagrams",
]
