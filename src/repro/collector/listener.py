"""The UDP listener daemon and its ``SourceSpec(kind="udp")`` adapter.

:class:`FlowCollector` is the first mile of a live deployment: routers
export NetFlow v5/v9/IPFIX datagrams at a loopback-default host/port,
a selectors-driven listener thread decodes them
(:mod:`repro.collector.decode`), tracks per-exporter sequence/loss
state (:mod:`repro.collector.exporters`) and batches rows into
:class:`~repro.flows.table.FlowTable` chunks
(:mod:`repro.collector.batcher`) on a bounded queue that the stream
engine drains.

Backpressure contract — the socket is never stalled:

* the listener thread keeps the kernel buffer drained even while the
  engine is busy sealing windows (that is why it is a thread and not
  an inline generator);
* when the chunk queue is full, *newly arrived datagrams are dropped
  and counted* (``repro_collector_datagrams_dropped_total``) before
  any decode work is spent on them, and a flushed batch that finds
  the queue full drops its rows with a count rather than block;
* kernel-level loss (socket buffer overflow) shows up in the
  per-exporter sequence accounting, so the drop story is honest end
  to end: counted at the queue, inferred at the wire.

Determinism caveat: UDP arrival order is not replayable — two runs of
the same capture may interleave exporters differently. All
determinism claims therefore live at the *window* level, where the
:class:`~repro.stream.window.WindowRing` routes rows by timestamp
(see ARCHITECTURE.md "Collector contract").
"""

from __future__ import annotations

import logging
import queue
import selectors
import socket
import struct
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.collector.batcher import ChunkBatcher
from repro.collector.decode import decode_datagram, peek_exporter
from repro.collector.exporters import ExporterTable
from repro.errors import CodecError, CollectorError, SpecError
from repro.flows.table import FlowTable
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics

__all__ = [
    "FlowCollector",
    "UdpSource",
    "read_recorded_datagrams",
    "send_datagrams",
]

logger = logging.getLogger(__name__)

# Declared at import so /metrics renders HELP/TYPE and zero-samples
# for every collector series even before the first datagram arrives.
_DATAGRAMS = obs_metrics.counter(
    "repro_collector_datagrams_total",
    "Datagrams received by the UDP collector",
)
_FLOWS = obs_metrics.counter(
    "repro_collector_flows_total",
    "Flow rows decoded from collector datagrams",
)
_MALFORMED = obs_metrics.counter(
    "repro_collector_malformed_total",
    "Undecodable datagrams plus truncated/invalid records",
)
_DGRAM_DROPPED = obs_metrics.counter(
    "repro_collector_datagrams_dropped_total",
    "Datagrams dropped because the chunk queue was full",
)
_FLOW_DROPPED = obs_metrics.counter(
    "repro_collector_flows_dropped_total",
    "Decoded flow rows dropped at flush on a full chunk queue",
)
_SEQ_LOST = obs_metrics.counter(
    "repro_collector_sequence_lost_total",
    "Flows/packets lost upstream, inferred from sequence gaps",
)
_TMPL_MISS = obs_metrics.counter(
    "repro_collector_template_miss_total",
    "Data sets buffered because their template had not arrived",
)
_TMPL_DROPPED = obs_metrics.counter(
    "repro_collector_template_dropped_total",
    "Buffered data sets dropped by bound or expiry sweep",
)
_EXPORTERS = obs_metrics.gauge(
    "repro_collector_exporters",
    "Exporter streams (address+domain) currently tracked",
)
_QUEUE_DEPTH = obs_metrics.gauge(
    "repro_collector_queue_depth",
    "Flow-table chunks waiting in the collector queue",
)

_EOF = object()

#: Datagrams drained per socket-readable wakeup before the loop
#: yields to flush/sweep housekeeping.
_RECV_BURST = 512
_MAX_DATAGRAM = 65535


class FlowCollector:
    """Bind a UDP socket and stream decoded ``FlowTable`` chunks.

    The socket is bound eagerly in the constructor — the chosen port
    (``port=0`` binds ephemeral) must be reportable before the
    pipeline spends time training a detector, and the kernel buffers
    early datagrams meanwhile. Bind failures raise
    :class:`~repro.errors.CollectorError` (CLI exit code 7).
    """

    def __init__(
        self,
        listen: str = "127.0.0.1",
        port: int = 0,
        *,
        boot_time: float = 0.0,
        queue_chunks: int = 64,
        max_batch_seconds: float = 0.25,
        idle_seconds: float | None = None,
        max_flows: int | None = None,
        rcvbuf: int = 1 << 22,
        template_pending: int = 32,
        template_expiry: float = 300.0,
        exporter_idle: float = 900.0,
    ) -> None:
        self.listen = listen
        self.boot_time = boot_time
        self.idle_seconds = idle_seconds
        self.max_flows = max_flows
        self.max_batch_seconds = max_batch_seconds
        self._queue: queue.Queue = queue.Queue(maxsize=queue_chunks)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._batcher: ChunkBatcher | None = None
        self.exporters = ExporterTable(
            max_pending_sets=template_pending,
            pending_expiry=template_expiry,
            idle_expiry=exporter_idle,
        )
        # Listener-thread counters; single-writer, torn reads are
        # impossible for Python ints, so snapshots need no lock.
        self.datagrams = 0
        self.flows = 0
        self.malformed = 0
        self.datagrams_dropped = 0
        self.flows_dropped = 0
        self.sequence_lost = 0
        self.template_misses = 0
        self.template_drops = 0
        self.chunks_emitted = 0
        try:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_RCVBUF, int(rcvbuf)
            )
            sock.bind((listen, int(port)))
        except OSError as exc:
            raise CollectorError(
                f"cannot bind udp://{listen}:{port}: {exc}"
            ) from exc
        sock.setblocking(False)
        self._sock = sock
        # Cached: snapshots must still report the port after close().
        self._port = sock.getsockname()[1]

    @property
    def port(self) -> int:
        return self._port

    @property
    def address(self) -> str:
        return f"udp://{self.listen}:{self.port}"

    # -- listener thread ---------------------------------------------------

    def start(self, chunk_rows: int = 8192) -> None:
        """Start the listener thread (idempotent)."""
        if self._thread is not None:
            return
        self._batcher = ChunkBatcher(
            self._enqueue,
            chunk_rows=chunk_rows,
            max_batch_seconds=self.max_batch_seconds,
        )
        self._thread = threading.Thread(
            target=self._serve, name="repro-collector", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Ask the listener to flush and finish."""
        self._stop.set()

    def close(self) -> None:
        """Stop, join and release the socket."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        if self._sock.fileno() != -1:
            self._sock.close()

    def _serve(self) -> None:
        batcher = self._batcher
        assert batcher is not None
        tick = min(self.max_batch_seconds, 0.1)
        idle_since: float | None = None
        last_sweep = time.monotonic()
        selector = selectors.DefaultSelector()
        selector.register(self._sock, selectors.EVENT_READ)
        try:
            while not self._stop.is_set():
                ready = selector.select(timeout=tick)
                now = time.monotonic()
                got_any = False
                if ready:
                    got_any = self._drain_socket(batcher, now)
                if got_any:
                    idle_since = None
                elif self.datagrams and self.idle_seconds is not None:
                    if idle_since is None:
                        idle_since = now
                    elif now - idle_since >= self.idle_seconds:
                        break
                batcher.poll(now)
                if self.max_flows is not None \
                        and self.flows >= self.max_flows:
                    break
                if now - last_sweep >= 1.0:
                    last_sweep = now
                    dropped_exp, expired = self.exporters.sweep(now)
                    if expired:
                        self.template_drops += expired
                        _TMPL_DROPPED.inc(expired)
                    if dropped_exp or expired:
                        _EXPORTERS.set(len(self.exporters))
        finally:
            selector.unregister(self._sock)
            selector.close()
            batcher.flush("final")
            self._put_eof()

    def _drain_socket(self, batcher: ChunkBatcher, now: float) -> bool:
        got_any = False
        for _ in range(_RECV_BURST):
            try:
                data, addr = self._sock.recvfrom(_MAX_DATAGRAM)
            except BlockingIOError:
                break
            except OSError:
                # Socket closed under us during shutdown.
                self._stop.set()
                break
            got_any = True
            self.datagrams += 1
            _DATAGRAMS.inc()
            if self._queue.full():
                # Backpressure: shed load before spending decode
                # cycles; never block the socket.
                self.datagrams_dropped += 1
                _DGRAM_DROPPED.inc()
                continue
            self._on_datagram(data, addr[0], now)
        return got_any

    def _on_datagram(self, data: bytes, address: str, now: float) -> None:
        try:
            version, domain = peek_exporter(data)
            before = len(self.exporters)
            state = self.exporters.get(address, version, domain)
            if len(self.exporters) != before:
                _EXPORTERS.set(len(self.exporters))
            decoded = decode_datagram(
                data, self.boot_time, cache=state.templates, now=now
            )
        except CodecError as exc:
            self.malformed += 1
            _MALFORMED.inc()
            logger.debug(
                "malformed datagram from %s (%d bytes): %s",
                address, len(data), exc,
            )
            return
        lost = state.note(decoded, now)
        if lost:
            self.sequence_lost += lost
            _SEQ_LOST.inc(lost)
        if decoded.malformed:
            self.malformed += decoded.malformed
            _MALFORMED.inc(decoded.malformed)
        if decoded.buffered_sets:
            self.template_misses += decoded.buffered_sets
            _TMPL_MISS.inc(decoded.buffered_sets)
        if decoded.dropped_sets:
            self.template_drops += decoded.dropped_sets
            _TMPL_DROPPED.inc(decoded.dropped_sets)
        rows = decoded.rows
        if len(rows):
            self.flows += len(rows)
            _FLOWS.inc(len(rows))
            assert self._batcher is not None
            self._batcher.add(rows)

    def _enqueue(self, table: FlowTable, reason: str) -> bool:
        try:
            self._queue.put_nowait((table, reason))
        except queue.Full:
            self.flows_dropped += len(table)
            _FLOW_DROPPED.inc(len(table))
            return False
        _QUEUE_DEPTH.set(self._queue.qsize())
        return True

    def _put_eof(self) -> None:
        while True:
            try:
                self._queue.put_nowait(_EOF)
                return
            except queue.Full:
                # Make room: dropping one pending chunk is honest
                # (counted) and guarantees shutdown always lands.
                try:
                    table, _ = self._queue.get_nowait()
                    self.flows_dropped += len(table)
                    _FLOW_DROPPED.inc(len(table))
                except queue.Empty:
                    continue

    # -- consumer side -----------------------------------------------------

    def chunks(self, chunk_rows: int = 8192) -> Iterator[FlowTable]:
        """Consume the collector as a chunk stream (starts it).

        Each yielded table is wrapped in a ``collector.chunk`` journal
        event made the ambient causal parent for the duration of the
        yield — the contextvar survives into the engine's
        ``process()`` call, so every ``chunk.ingest`` event links back
        to the datagram batch that caused it.
        """
        self.start(chunk_rows)
        obs_events.emit(
            "collector.start", listen=self.listen, port=self.port
        )
        seq = 0
        try:
            while True:
                item = self._queue.get()
                if item is _EOF:
                    break
                table, reason = item
                _QUEUE_DEPTH.set(self._queue.qsize())
                seq += 1
                self.chunks_emitted = seq
                event = obs_events.emit(
                    "collector.chunk",
                    seq=seq, rows=len(table), reason=reason,
                )
                with obs_events.causal(event):
                    yield table
        finally:
            obs_events.emit("collector.stop", **self.counters())
            self.close()

    # -- reporting ---------------------------------------------------------

    def counters(self) -> dict[str, int]:
        """Scalar counter snapshot (journal events, summaries)."""
        return {
            "datagrams": self.datagrams,
            "flows": self.flows,
            "malformed": self.malformed,
            "datagrams_dropped": self.datagrams_dropped,
            "flows_dropped": self.flows_dropped,
            "sequence_lost": self.sequence_lost,
            "template_misses": self.template_misses,
            "template_drops": self.template_drops,
            "chunks": self.chunks_emitted,
        }

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state for ``/status`` and ``RunResult.payload``."""
        state = dict(self.counters())
        state["listen"] = self.listen
        state["port"] = self.port
        state["queue_depth"] = self._queue.qsize()
        state["exporters"] = self.exporters.snapshot()
        return state


# -- session-facade registration ----------------------------------------------


class UdpSource:
    """``udp`` source: a live NetFlow v5/v9/IPFIX collector, unbounded.

    Options (``[source.options]``): ``listen`` (default 127.0.0.1),
    ``port`` (default 0 = ephemeral; the bound port lands in the run
    summary and payload), ``boot_time`` (sys-uptime anchor for
    timestamp reconstruction), ``queue_chunks``, ``max_batch_seconds``,
    ``idle_seconds`` (stop after this much quiet following the first
    datagram — replay/CI mode; default: listen forever), ``max_flows``
    (stop after decoding this many rows — test mode), ``rcvbuf``,
    ``template_pending``, ``template_expiry``, ``exporter_idle``.
    """

    kind = "udp"
    bounded = False

    _KNOWN = (
        "listen", "port", "boot_time", "queue_chunks",
        "max_batch_seconds", "idle_seconds", "max_flows", "rcvbuf",
        "template_pending", "template_expiry", "exporter_idle",
    )

    def __init__(self, spec) -> None:
        self.spec = spec
        for key in spec.options:
            if key not in self._KNOWN:
                raise SpecError(
                    f"unknown udp option {key!r}; expected "
                    f"{', '.join(self._KNOWN)}",
                    field=f"source.options.{key}",
                )
        options = spec.options
        idle = options.get("idle_seconds")
        limit = options.get("max_flows")
        self.collector = FlowCollector(
            listen=str(options.get("listen", "127.0.0.1")),
            port=int(options.get("port", 0)),
            boot_time=float(options.get("boot_time", 0.0)),
            queue_chunks=int(options.get("queue_chunks", 64)),
            max_batch_seconds=float(
                options.get("max_batch_seconds", 0.25)
            ),
            idle_seconds=None if idle is None else float(idle),
            max_flows=None if limit is None else int(limit),
            rcvbuf=int(options.get("rcvbuf", 1 << 22)),
            template_pending=int(options.get("template_pending", 32)),
            template_expiry=float(
                options.get("template_expiry", 300.0)
            ),
            exporter_idle=float(options.get("exporter_idle", 900.0)),
        )

    @property
    def port(self) -> int:
        return self.collector.port

    @property
    def stream_origin(self) -> float | None:
        """Window-grid anchor for the stream engine.

        A non-zero ``[source] origin`` anchors window index 0 there —
        set it to the same instant a file-based replay of the capture
        would use and the two paths produce identical window indices
        and alarm ids. The default (0.0) means *auto*: the ring floors
        the first flow's timestamp to the window grid, which keeps a
        live wall-clock deployment from sealing decades of empty
        windows between the epoch and now.
        """
        return self.spec.origin or None

    def trace(self):
        raise SpecError(
            "source kind 'udp' is unbounded; it cannot back modes "
            "that need the whole trace",
            field="source.kind",
        )

    def chunks(self, chunk_rows: int) -> Iterator[FlowTable]:
        return self.collector.chunks(chunk_rows)

    def stats(self) -> dict[str, Any]:
        return self.collector.snapshot()

    def close(self) -> None:
        self.collector.close()

    def describe(self) -> str:
        return self.collector.address


from repro.api.registry import sources as _sources  # noqa: E402

_sources.register("udp", UdpSource)


# -- replay helpers (tests, CI smoke, benchmark) ------------------------------


def read_recorded_datagrams(
    path: str | Path,
) -> tuple[float, list[bytes]]:
    """Raw export packets from an ``.rpv5`` container, undecoded.

    The container is literally a boot-time header plus length-prefixed
    v5 export packets (:func:`repro.flows.flowio.write_binary`), so a
    recorded trace doubles as a datagram capture: replaying these
    bytes over loopback exercises the collector with exactly what a
    router would have sent.
    """
    from repro.flows.flowio import _BINARY_MAGIC, _FILE_HEADER, _PACKET_LEN

    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < _FILE_HEADER.size:
        raise CodecError(f"{path}: not an rpv5 container")
    magic, boot_time, packet_count = _FILE_HEADER.unpack_from(blob, 0)
    if magic != _BINARY_MAGIC:
        raise CodecError(f"{path}: bad magic {magic!r}")
    packets: list[bytes] = []
    offset = _FILE_HEADER.size
    for _ in range(packet_count):
        (length,) = _PACKET_LEN.unpack_from(blob, offset)
        offset += _PACKET_LEN.size
        packets.append(blob[offset:offset + length])
        offset += length
    return boot_time, packets


def send_datagrams(
    packets: Iterable[bytes] | Sequence[bytes],
    port: int,
    host: str = "127.0.0.1",
    pace_every: int = 64,
    pace_seconds: float = 0.001,
) -> int:
    """Blast datagrams at a collector over loopback; returns the count.

    A short pause every ``pace_every`` packets keeps a fast sender
    from overrunning the kernel socket buffer in tests — loss would
    be *accounted* (sequence gaps), but equivalence tests need zero.
    """
    sent = 0
    with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
        for packet in packets:
            sock.sendto(packet, (host, port))
            sent += 1
            if pace_every and sent % pace_every == 0:
                time.sleep(pace_seconds)
    return sent
