"""Per-exporter state for the UDP collector.

An *exporter* is one observation stream: the datagram's source address
plus the observation domain the header names (v9 ``source_id``, IPFIX
``observation_domain``, the engine ids for v5). One router chassis
routinely exports several domains from one address, and each domain
numbers its sequence space and templates independently — so the key,
the sequence tracking and the :class:`~repro.collector.decode.TemplateCache`
all live at that granularity.

Sequence accounting is the collector's honesty mechanism: UDP drops
silently, and the only signal that flows went missing between router
and socket is a gap in the header sequence numbers. The tracker turns
``(seq, seq_units)`` pairs from the decoder into a cumulative
``sequence_lost`` count, re-baselining on reordering/restarts (a
backwards jump is a reset, not negative loss) and on datagrams whose
unit count the decoder could not establish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.collector.decode import DecodedDatagram, TemplateCache

__all__ = ["ExporterKey", "ExporterState", "ExporterTable"]

#: ``(source_address, version, observation_domain)``
ExporterKey = tuple[str, int, int]

_SEQ_MOD = 1 << 32
#: Forward gaps at least this large are treated as an exporter restart
#: (sequence re-baseline), not packet loss — half the space, like TCP.
_RESET_GAP = 1 << 31


@dataclass(slots=True)
class ExporterState:
    """Counters and template state for one exporter stream."""

    key: ExporterKey
    templates: TemplateCache
    packets: int = 0
    flows: int = 0
    malformed: int = 0
    sequence_lost: int = 0
    sequence_resets: int = 0
    template_sets: int = 0
    template_misses: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    _expected_seq: int | None = field(default=None, repr=False)

    def note(self, datagram: DecodedDatagram, now: float) -> int:
        """Fold one decoded datagram in; returns newly detected loss."""
        if not self.first_seen:
            self.first_seen = now
        self.last_seen = now
        self.packets += 1
        self.flows += len(datagram.rows)
        self.malformed += datagram.malformed
        self.template_sets += datagram.template_sets
        self.template_misses += datagram.buffered_sets
        lost = 0
        if self._expected_seq is not None:
            gap = (datagram.seq - self._expected_seq) % _SEQ_MOD
            if 0 < gap < _RESET_GAP:
                lost = gap
                self.sequence_lost += gap
            elif gap >= _RESET_GAP:
                self.sequence_resets += 1
        if datagram.seq_reliable:
            self._expected_seq = (
                datagram.seq + datagram.seq_units
            ) % _SEQ_MOD
        else:
            self._expected_seq = None
        return lost

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready counters for ``/status`` and ``RunResult``."""
        address, version, domain = self.key
        return {
            "address": address,
            "version": version,
            "domain": domain,
            "packets": self.packets,
            "flows": self.flows,
            "malformed": self.malformed,
            "sequence_lost": self.sequence_lost,
            "sequence_resets": self.sequence_resets,
            "template_sets": self.template_sets,
            "template_misses": self.template_misses,
            "templates": len(self.templates.templates),
            "pending_sets": self.templates.pending_count,
        }


class ExporterTable:
    """All exporters the listener has heard from, keyed and sweepable."""

    def __init__(
        self,
        max_pending_sets: int = 32,
        pending_expiry: float = 300.0,
        idle_expiry: float = 900.0,
        clock=time.monotonic,
    ) -> None:
        self._states: dict[ExporterKey, ExporterState] = {}
        self.max_pending_sets = max_pending_sets
        self.pending_expiry = pending_expiry
        self.idle_expiry = idle_expiry
        self._clock = clock

    def __len__(self) -> int:
        return len(self._states)

    def get(self, address: str, version: int, domain: int) -> ExporterState:
        key = (address, version, domain)
        state = self._states.get(key)
        if state is None:
            state = ExporterState(
                key=key,
                templates=TemplateCache(
                    max_pending=self.max_pending_sets,
                    pending_expiry=self.pending_expiry,
                ),
            )
            self._states[key] = state
        return state

    def sweep(self, now: float | None = None) -> tuple[int, int]:
        """Expire idle exporters and aged pending sets.

        Returns ``(exporters_dropped, pending_sets_dropped)``. Runs on
        the listener's select-timeout tick, so a dead exporter's
        template cache and buffered data sets cannot pin memory.
        """
        if now is None:
            now = self._clock()
        expired_sets = 0
        dropped = []
        for key, state in self._states.items():
            expired_sets += state.templates.sweep(now)
            if now - state.last_seen > self.idle_expiry:
                dropped.append(key)
        for key in dropped:
            del self._states[key]
        return len(dropped), expired_sets

    def snapshot(self) -> list[dict[str, Any]]:
        """Per-exporter counter dicts, stable order (by key)."""
        return [
            self._states[key].snapshot()
            for key in sorted(self._states)
        ]
