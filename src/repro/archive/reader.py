"""Querying an archive: prune with zone maps, serve mmap views.

:class:`ArchiveReader` answers the same window+filter queries as the
in-memory :class:`~repro.flows.store.FlowStore` — deliberately so: it
implements the store's query surface (``query_table`` / ``query`` /
``count`` / ``top_feature_values`` plus ``slice_seconds`` and
``origin``), which lets a :class:`~repro.system.backend.FlowBackend`,
and therefore the whole triage pipeline, run against the on-disk
archive unchanged. Results are **byte-identical** to a `FlowStore`
holding the same rows (the equivalence suite asserts it): partitions
scan in canonical ``(slice, shard, seq)`` order and the final
``(start, 5-tuple)`` lexsort resolves ties by that order, exactly as
the store's slice-order concat does.

A query touches a partition's payload only when it must:

1. the **zone map** (time bounds, per-feature summaries) prunes
   partitions that cannot contribute — no file I/O at all;
2. a surviving partition mmaps as a zero-copy
   :class:`~repro.flows.table.FlowTable`; if the zone map proves every
   row starts inside the window and there is no filter, the view is
   served whole — still zero-copy;
3. otherwise a boolean mask selects the matching rows (one copy of
   just those rows, like any store query).

Scanning the directory re-validates integrity cheaply (header +
sizes): torn files, orphaned temporaries and sidecar-less data files
are moved to ``quarantine/`` and counted, never served, and never
fatal for the rest of the archive. Per-query pruning counters are
kept on :attr:`last_scan` — the benchmark and the operator ``stats``
command both read them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.archive.layout import ArchiveLayout
from repro.archive.partition import Partition, load_partition
from repro.archive.planner import (
    QueryPlan,
    count_rows,
    feature_column,
    histogram_rows,
    merge_histograms,
    ranked_from_histogram,
    scan_count_task,
    scan_histogram_task,
)
from repro.errors import ArchiveError, CodecError, StoreError
from repro.flows.filter import FilterNode, compile_mask, parse_filter
from repro.flows.record import FlowFeature, FlowRecord
from repro.flows.table import FLOW_DTYPE, FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS, FlowTrace, TraceStats
from repro.obs import events as obs_events, metrics as obs_metrics

if TYPE_CHECKING:
    from repro.parallel.executor import ShardExecutor
    from repro.parallel.partition import PartitionSpec

__all__ = ["ScanStats", "ArchiveStats", "ArchiveReader"]

_QUERIES = obs_metrics.counter(
    "repro_archive_queries_total",
    "Planned archive queries (rows, count and top alike).",
)
_ZONE_PRUNES = obs_metrics.counter(
    "repro_archive_zone_prunes_total",
    "Partitions skipped by zone maps (time and filter pruning).",
)
_PARTITIONS_SCANNED = obs_metrics.counter(
    "repro_archive_partitions_scanned_total",
    "Partitions whose payload a query actually opened.",
)
_PUSHDOWN = obs_metrics.counter(
    "repro_archive_pushdown_total",
    "Queries answered from sidecar metadata alone, by planner tier.",
)


@dataclass(frozen=True, slots=True)
class ScanStats:
    """How the last query used (or skipped) the archive's partitions."""

    partitions: int
    pruned_time: int
    pruned_filter: int
    scanned: int
    rows_scanned: int
    rows_returned: int
    #: Payload bytes of the partitions actually opened for rows.
    payload_bytes: int = 0

    @property
    def pruned(self) -> int:
        return self.pruned_time + self.pruned_filter


@dataclass(frozen=True, slots=True)
class ArchiveStats:
    """Aggregate state of the archive directory."""

    partitions: int
    sealed: int
    rows: int
    payload_bytes: int
    slices: int
    shards: int
    quarantined: int
    span: tuple[float, float] | None


class ArchiveReader:
    """Read-only, zone-map-pruned view of one archive directory."""

    def __init__(
        self,
        root: str | Path,
        use_zone_maps: bool = True,
        auto_refresh: bool = True,
        executor: "ShardExecutor | None" = None,
    ) -> None:
        """``use_zone_maps=False`` disables pruning (every query scans
        every partition) — the full-scan baseline for the benchmark and
        the equivalence tests. ``auto_refresh`` re-scans the directory
        before each query so a reader following a live writer (the
        streaming triage loop) sees newly sealed windows.

        ``executor`` (caller-owned, never closed here) lets aggregate
        queries that must read payloads fan their per-partition scans
        over a :class:`~repro.parallel.executor.ShardExecutor`: each
        task ships as a ``(path, rows, window, filter)`` tuple and the
        worker opens the partition's mmap directly — zero row bytes
        cross the pool in either direction."""
        self.layout = ArchiveLayout(root)
        self.use_zone_maps = use_zone_maps
        self.auto_refresh = auto_refresh
        self.executor = executor
        self._partitions: list[Partition] = []
        self._loaded: dict[str, Partition] = {}
        self._quarantined = 0
        self._dir_stamp: int | None = None
        self._geometry: tuple[float, float] | None = None
        self.last_scan = ScanStats(0, 0, 0, 0, 0, 0)
        #: Planner decision record of the last query (``--explain``).
        self.last_plan: QueryPlan | None = None
        self.refresh()

    # -- directory scan ----------------------------------------------------

    def _manifest(self) -> tuple[float, float] | None:
        # Geometry is written once and never moves, so the first
        # successful read is cached — FlowBackend reads slice_seconds
        # per alarm and must not pay a file open + JSON parse each time.
        if self._geometry is None:
            self._geometry = self.layout.read_manifest()
        return self._geometry

    @property
    def slice_seconds(self) -> float:
        """Rotation width from the manifest (default before one exists)."""
        manifest = self._manifest()
        return manifest[0] if manifest else DEFAULT_BIN_SECONDS

    @property
    def origin(self) -> float:
        """Left edge of slice 0 (0.0 for an empty archive)."""
        manifest = self._manifest()
        return manifest[1] if manifest else 0.0

    def refresh(self) -> None:
        """Re-scan the directory: admit new partitions, quarantine bad.

        Already-validated partitions are reused (their mmaps stay
        shared); schema-version mismatches raise
        :class:`~repro.errors.CodecError` — a foreign-version archive
        must fail loudly, not shrink silently. An unchanged directory
        (same mtime as the last scan — file additions, renames and
        quarantine moves all bump it) short-circuits, which keeps
        ``auto_refresh`` queries cheap on a quiet archive.
        """
        try:
            stamp = self.layout.root.stat().st_mtime_ns
        except FileNotFoundError:
            stamp = None
        if stamp is not None and stamp == self._dir_stamp:
            return
        # Only trust a stamp that is comfortably in the past: file
        # timestamps come from a coarse kernel clock, so a rename
        # landing in the same tick as this scan would not bump the
        # mtime and a cached fresh stamp could hide it forever.
        if stamp is not None and \
                time.time_ns() - stamp < 50_000_000:  # 50 ms
            stamp = None
        for stray in self.layout.stray_files():
            self._quarantine(stray, "orphaned temporary file")
        live: list[Partition] = []
        superseded: set[str] = set()
        seen: set[str] = set()
        for key, path in self.layout.partition_files():
            seen.add(path.name)
            cached = self._loaded.get(path.name)
            if cached is not None:
                live.append(cached)
                superseded.update(cached.zone.replaces)
                continue
            zone_path = self.layout.zone_path(path)
            try:
                zone_text = zone_path.read_text()
            except FileNotFoundError:
                # Data lands before its sidecar, so a sidecar-less
                # file is either a writer mid-partition-write (young:
                # leave it alone, exactly like an in-flight .tmp) or a
                # crash leftover (old: quarantine it).
                try:
                    age = time.time() - path.stat().st_mtime
                except FileNotFoundError:
                    continue
                if age <= 60.0:
                    seen.discard(path.name)
                    continue
                self._quarantine(
                    path, "partition without a zone-map sidecar"
                )
                continue
            try:
                partition = load_partition(key, path, zone_text)
            except CodecError:
                raise
            except ArchiveError as exc:
                self._quarantine(path, str(exc))
                continue
            self._loaded[path.name] = partition
            live.append(partition)
            superseded.update(partition.zone.replaces)
        # Evict cache entries for files no longer on disk (compaction
        # deletes, quarantine moves): a long-lived reader must not pin
        # deleted inodes through cached mmap views forever.
        for name in [n for n in self._loaded if n not in seen]:
            del self._loaded[name]
        if superseded:
            # A crash between compaction's write and its deletes can
            # leave both the merged partition and its inputs on disk;
            # the merged one's provenance list wins.
            live = [p for p in live if p.path.name not in superseded]
        live.sort(key=lambda p: p.key)
        self._partitions = live
        self._dir_stamp = stamp

    def partitions(self) -> list[Partition]:
        """The servable partitions, canonical scan order."""
        return list(self._partitions)

    def __len__(self) -> int:
        return sum(p.rows for p in self._partitions)

    def stats(self) -> ArchiveStats:
        """Aggregate directory state (refreshes first).

        ``quarantined`` counts the data files actually sitting in
        ``quarantine/`` — the directory's state, not just what this
        reader instance moved there — so a fresh ``repro archive
        stats`` surfaces corruption an earlier process detected.
        """
        self.refresh()
        parts = self._partitions
        span = None
        if parts:
            span = (
                min(p.zone.min_start for p in parts),
                max(p.zone.max_start for p in parts),
            )
        quarantine = self.layout.quarantine_dir
        quarantined = 0
        if quarantine.is_dir():
            quarantined = sum(
                1
                for entry in quarantine.iterdir()
                if entry.is_file()
                and not entry.name.endswith(".reason")
                and not entry.name.endswith(".zone.json")
                and not entry.name.endswith(".fidx.json")
            )
        return ArchiveStats(
            partitions=len(parts),
            sealed=sum(1 for p in parts if p.zone.sealed),
            rows=sum(p.rows for p in parts),
            payload_bytes=sum(p.payload_bytes for p in parts),
            slices=len({p.key.slice_index for p in parts}),
            shards=len({p.key.shard for p in parts}),
            quarantined=quarantined,
            span=span,
        )

    # -- the pruned scan ---------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Quarantine one bad file: move, count, journal."""
        self.layout.quarantine(path, reason)
        self._quarantined += 1
        if obs_events.enabled():
            obs_events.emit(
                "archive.quarantine",
                path=path.name,
                reason=reason,
            )

    def _note_plan(self, plan: QueryPlan) -> None:
        """Publish one query's plan: ``last_plan`` plus obs counters."""
        self.last_plan = plan
        if obs_metrics.enabled():
            _QUERIES.inc()
            pruned = plan.pruned_time + plan.pruned_filter
            if pruned:
                _ZONE_PRUNES.inc(pruned)
            if plan.scanned:
                _PARTITIONS_SCANNED.inc(plan.scanned)
            if plan.pushdown:
                _PUSHDOWN.labels(tier=plan.pushdown).inc()
        if obs_events.enabled():
            obs_events.emit(
                "planner.query",
                query=plan.query,
                partitions=plan.partitions,
                pruned=plan.pruned_time + plan.pruned_filter,
                scanned=plan.scanned,
                pushdown=plan.pushdown or None,
            )

    def _window_tables(
        self,
        start: float,
        end: float,
        filter_node: FilterNode | None,
        mask_of: Callable[[FlowTable], np.ndarray] | None,
    ) -> list[FlowTable]:
        """Per-partition row sets of the query, canonical order.

        Time and filter masks apply here; the final ordering sort is
        the caller's. Fully covered, unfiltered partitions pass
        through as whole zero-copy views.
        """
        pruned_time = pruned_filter = scanned = 0
        rows_scanned = rows_returned = payload_bytes = 0
        selected: list[FlowTable] = []
        for partition in self._partitions:
            zone = partition.zone
            if self.use_zone_maps:
                if not zone.overlaps_window(start, end):
                    pruned_time += 1
                    continue
                if filter_node is not None and \
                        not zone.may_match(filter_node):
                    pruned_filter += 1
                    continue
            scanned += 1
            table = partition.table()
            rows_scanned += len(table)
            payload_bytes += partition.payload_bytes
            if (
                mask_of is None
                and self.use_zone_maps
                and zone.covered_by_window(start, end)
            ):
                selected.append(table)
                rows_returned += len(table)
                continue
            starts = table.start
            mask = (starts >= start) & (starts < end)
            if mask_of is not None:
                mask &= mask_of(table)
            if mask.all():
                selected.append(table)
                rows_returned += len(table)
            elif mask.any():
                rows = table.select(mask)
                selected.append(rows)
                rows_returned += len(rows)
        self.last_scan = ScanStats(
            partitions=len(self._partitions),
            pruned_time=pruned_time,
            pruned_filter=pruned_filter,
            scanned=scanned,
            rows_scanned=rows_scanned,
            rows_returned=rows_returned,
            payload_bytes=payload_bytes,
        )
        self._note_plan(QueryPlan(
            query="rows",
            partitions=len(self._partitions),
            pruned_time=pruned_time,
            pruned_filter=pruned_filter,
            sidecar_answered=0,
            scanned=scanned,
            payload_bytes_read=payload_bytes,
        ))
        return selected

    # -- FlowStore-compatible queries --------------------------------------

    def query_table(
        self,
        start: float,
        end: float,
        flow_filter: str | FilterNode | None = None,
    ) -> FlowTable:
        """Columnar window+filter query, ordered by ``(start, 5-tuple)``.

        Same contract (and byte-identical results) as
        :meth:`repro.flows.store.FlowStore.query_table`, with zone-map
        pruning deciding which partition files are touched at all.
        """
        if end < start:
            raise StoreError(f"inverted interval [{start}, {end})")
        if self.auto_refresh:
            self.refresh()
        filter_node, mask_of = self._compile(flow_filter)
        table = FlowTable.concat(
            self._window_tables(start, end, filter_node, mask_of)
        )
        if len(table) > 1:
            order = np.lexsort(
                (
                    table.proto,
                    table.dst_port,
                    table.src_port,
                    table.dst_ip,
                    table.src_ip,
                    table.start,
                )
            )
            table = table.select(order)
        return table

    def query(
        self,
        start: float,
        end: float,
        flow_filter: str | FilterNode | None = None,
    ) -> list[FlowRecord]:
        """Record view of :meth:`query_table` (same rows, same order)."""
        return self.query_table(start, end, flow_filter).to_records()

    def count(
        self,
        start: float,
        end: float,
        flow_filter: str | FilterNode | None = None,
    ) -> TraceStats:
        """Aggregate counters over a query without materialising flows.

        Unfiltered, fully covered partitions are answered from their
        zone maps alone (row/packet/byte sums) — counting an archived
        window costs zero payload reads; :attr:`last_plan` records
        ``pushdown="zone-map-stats"`` when *every* surviving partition
        answered that way. Partitions that do need a payload scan fan
        out over :attr:`executor` when one is attached.
        """
        if end < start:
            return TraceStats(
                flows=0, packets=0, bytes=0, start=start, end=start
            )
        if self.auto_refresh:
            self.refresh()
        filter_node, mask_of = self._compile(flow_filter)
        flows = packets = byte_total = 0
        lo, hi = np.inf, -np.inf
        pruned_time = pruned_filter = sidecar = 0
        needs_scan: list[Partition] = []
        for partition in self._partitions:
            zone = partition.zone
            if self.use_zone_maps:
                if not zone.overlaps_window(start, end):
                    pruned_time += 1
                    continue
                if filter_node is not None and \
                        not zone.may_match(filter_node):
                    pruned_filter += 1
                    continue
                if mask_of is None and \
                        zone.covered_by_window(start, end):
                    sidecar += 1
                    flows += zone.rows
                    packets += zone.sum_packets
                    byte_total += zone.sum_bytes
                    lo = min(lo, zone.min_start)
                    hi = max(hi, zone.max_end)
                    continue
            needs_scan.append(partition)
        parallel = 0
        if self._fan_out(needs_scan):
            parallel = len(needs_scan)
            parts = self.executor.map_items(
                scan_count_task,
                [
                    (str(p.path), p.rows, start, end, filter_node)
                    for p in needs_scan
                ],
            )
        else:
            parts = [
                count_rows(p.table(), start, end, filter_node)
                for p in needs_scan
            ]
        for part in parts:
            if part is None:
                continue
            part_flows, part_packets, part_bytes, part_lo, part_hi = part
            flows += part_flows
            packets += part_packets
            byte_total += part_bytes
            lo = min(lo, part_lo)
            hi = max(hi, part_hi)
        self._note_plan(QueryPlan(
            query="count",
            partitions=len(self._partitions),
            pruned_time=pruned_time,
            pruned_filter=pruned_filter,
            sidecar_answered=sidecar,
            scanned=len(needs_scan),
            payload_bytes_read=sum(
                p.payload_bytes for p in needs_scan
            ),
            pushdown="zone-map-stats" if not needs_scan else None,
            parallel_tasks=parallel,
        ))
        if flows == 0:
            return TraceStats(
                flows=0, packets=0, bytes=0, start=start, end=start
            )
        return TraceStats(
            flows=flows,
            packets=packets,
            bytes=byte_total,
            start=float(lo),
            end=float(hi),
        )

    def top_feature_values(
        self,
        start: float,
        end: float,
        feature: FlowFeature,
        n: int = 10,
        by_packets: bool = False,
        flow_filter: str | FilterNode | None = None,
    ) -> list[tuple[int, int]]:
        """Top-``n`` feature values, pushed down when sidecars allow.

        Three tiers, cheapest that applies wins, identical answers by
        construction (histogram merging is integer addition and the
        ranking replicates
        :func:`~repro.flows.aggregate.ranked_feature_values` — count
        descending, ties by the value's string rendering):

        1. **feature-index pushdown** — no row filter, zone maps on,
           every surviving partition fully covered by the window and
           carrying a ``.fidx.json`` sidecar: merge the per-partition
           histograms and rank. Zero payload bytes read.
        2. **parallel histogram scan** — an :attr:`executor` fans
           per-partition masked histograms over workers; only the
           small ``(values, counts)`` arrays return.
        3. **serial histogram scan** — same reduction in-process.
        """
        if n <= 0:
            raise StoreError(f"n must be positive: {n!r}")
        if end < start:
            return []
        if self.auto_refresh:
            self.refresh()
        filter_node, mask_of = self._compile(flow_filter)
        column = feature_column(feature)
        pruned_time = pruned_filter = 0
        candidates: list[Partition] = []
        for partition in self._partitions:
            zone = partition.zone
            if self.use_zone_maps:
                if not zone.overlaps_window(start, end):
                    pruned_time += 1
                    continue
                if filter_node is not None and \
                        not zone.may_match(filter_node):
                    pruned_filter += 1
                    continue
            candidates.append(partition)
        plan = dict(
            query="top",
            partitions=len(self._partitions),
            pruned_time=pruned_time,
            pruned_filter=pruned_filter,
            sidecar_answered=0,
            scanned=0,
            payload_bytes_read=0,
        )
        if not candidates:
            self._note_plan(QueryPlan(**plan))
            return []
        if (
            mask_of is None
            and self.use_zone_maps
            and all(
                p.zone.covered_by_window(start, end)
                for p in candidates
            )
        ):
            indexes = [p.feature_index() for p in candidates]
            if all(idx is not None and column in idx for idx in indexes):
                values, counts = merge_histograms(
                    [idx.histogram(column, by_packets) for idx in indexes]
                )
                self._note_plan(QueryPlan(
                    **{
                        **plan,
                        "sidecar_answered": len(candidates),
                        "pushdown": "feature-index",
                    }
                ))
                return ranked_from_histogram(values, counts, n)
        parallel = 0
        if self._fan_out(candidates):
            parallel = len(candidates)
            parts = self.executor.map_items(
                scan_histogram_task,
                [
                    (
                        str(p.path), p.rows, start, end,
                        filter_node, column, by_packets,
                    )
                    for p in candidates
                ],
            )
        else:
            parts = [
                histogram_rows(
                    p.table(), start, end,
                    filter_node, column, by_packets,
                )
                for p in candidates
            ]
        values, counts = merge_histograms(parts)
        self._note_plan(QueryPlan(
            **{
                **plan,
                "scanned": len(candidates),
                "payload_bytes_read": sum(
                    p.payload_bytes for p in candidates
                ),
                "parallel_tasks": parallel,
            }
        ))
        return ranked_from_histogram(values, counts, n)

    def _fan_out(self, parts: list[Partition]) -> bool:
        """Whether a payload scan should go through the executor."""
        return (
            self.executor is not None
            and self.executor.uses_processes
            and len(parts) > 1
        )

    def to_trace(
        self,
        start: float | None = None,
        end: float | None = None,
        bin_seconds: float | None = None,
    ) -> FlowTrace:
        """Materialise (a window of) the archive as a trace."""
        if self.auto_refresh:
            self.refresh()
        parts = self._partitions
        if not parts:
            return FlowTrace(
                bin_seconds=bin_seconds or self.slice_seconds,
                origin=self.origin,
            )
        lo = (
            min(p.zone.min_start for p in parts) if start is None else start
        )
        hi = (
            max(p.zone.max_start for p in parts) + 1.0
            if end is None
            else end
        )
        return FlowTrace(
            self.query_table(lo, hi),
            bin_seconds=bin_seconds or self.slice_seconds,
            origin=self.origin,
        )

    # -- sharded access ----------------------------------------------------

    def shard_tables(self, spec: "PartitionSpec") -> list[FlowTable]:
        """Per-shard tables of the whole archive.

        When every partition was written under exactly ``spec``
        (shards, key and seed all match), per-shard files concatenate
        **directly** — no hashing, no row movement; this is the fast
        path :func:`repro.parallel.partition.read_archive_sharded`
        documents. Any other layout falls back to hashing each
        partition's rows with the stable shard function, which yields
        the identical result (shard placement is a pure function of
        the key column).
        """
        from repro.parallel.partition import partition_table

        if self.auto_refresh:
            self.refresh()
        buckets: list[list[FlowTable]] = [[] for _ in range(spec.shards)]
        direct = all(
            p.zone.shard_spec is not None
            and p.zone.shard_spec[:3] == (spec.shards, spec.key, spec.seed)
            and p.zone.shard_spec[3] == p.key.shard
            for p in self._partitions
        )
        for partition in self._partitions:
            table = partition.table()
            if direct:
                buckets[partition.key.shard].append(table)
            else:
                for shard, rows in enumerate(
                    partition_table(table, spec)
                ):
                    if len(rows):
                        buckets[shard].append(rows)
        return [FlowTable.concat(bucket) for bucket in buckets]

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _compile(
        flow_filter: str | FilterNode | None,
    ) -> tuple[
        FilterNode | None, Callable[[FlowTable], np.ndarray] | None
    ]:
        if flow_filter is None:
            return None, None
        node = (
            flow_filter
            if isinstance(flow_filter, FilterNode)
            else parse_filter(flow_filter)
        )
        return node, compile_mask(node)

    def memory_mapped_bytes(self) -> int:
        """Total payload bytes currently served via mmap views."""
        return sum(
            p.rows * FLOW_DTYPE.itemsize
            for p in self._partitions
            if p._table is not None
        )

    def iter_tables(self) -> Iterable[FlowTable]:
        """Every partition's rows as zero-copy views, scan order."""
        for partition in self._partitions:
            yield partition.table()


# -- session-facade registration ---------------------------------------------

class ArchiveSource:
    """``archive`` source: a persistent on-disk partition directory.

    Bounded (the archive's current contents), and additionally exposes
    :meth:`reader` so archive-resume triage, pruned queries and
    management modes operate on the zone-map-pruned surface directly.
    """

    kind = "archive"
    bounded = True

    def __init__(self, spec) -> None:
        from repro.errors import SpecError

        self.spec = spec
        if not spec.path:
            raise SpecError(
                "source kind 'archive' requires a directory path",
                field="source.path",
            )
        self.path = spec.path
        self._reader: ArchiveReader | None = None

    def reader(self) -> ArchiveReader:
        """The (cached) zone-map-pruned reader over the directory."""
        if self._reader is None:
            self._reader = ArchiveReader(self.path)
        return self._reader

    def trace(self):
        return self.reader().to_trace()

    def chunks(self, chunk_rows: int):
        for table in self.reader().iter_tables():
            yield table

    def describe(self) -> str:
        return self.path


from repro.api.registry import sources as _sources  # noqa: E402

_sources.register("archive", ArchiveSource)
