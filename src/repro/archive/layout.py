"""On-disk layout of a flow archive.

An archive is one directory of **partition files** plus sidecar
metadata, modelled on an NfDump spool directory:

``MANIFEST.json``
    Archive geometry — schema version, rotation width
    (``slice_seconds``) and the timestamp of slice 0's left edge
    (``origin``). Written once, atomically, when the geometry is
    fixed; every reader and writer of the directory must agree with
    it.
``part<slice>-h<shard>-<seq>.flows``
    One partition: a fixed 32-byte header followed by raw
    little-endian :data:`~repro.flows.table.FLOW_DTYPE` rows. Because
    the payload *is* the dtype buffer, a reader maps it with
    ``np.memmap`` and hands the mapping straight to
    :class:`~repro.flows.table.FlowTable` — no decode step, no copy.
    ``slice`` is the rotation-slice index (signed), ``shard`` the hash
    shard the rows belong to (0 for unsharded archives) and ``seq`` a
    per-``(slice, shard)`` write sequence number.
``part<slice>-h<shard>-<seq>.zone.json``
    The partition's zone map (:mod:`repro.archive.index`): row count,
    time bounds, per-feature summaries, seal/sort flags. A partition
    without its sidecar is not servable.
``quarantine/``
    Where the reader moves files it refuses to serve (truncated
    payloads, orphaned temporaries, missing sidecars). Quarantined
    files keep their bytes for forensics but never reach a query.

Writes are crash-safe by construction: data is written to a
``.tmp-*`` name, flushed, fsynced and then atomically renamed, so a
partition either exists completely under its final name or not at
all. The sidecar follows the same protocol *after* the data file, so
a visible ``.flows`` file missing its sidecar marks an interrupted
write — the reader quarantines it.
"""

from __future__ import annotations

import json
import logging
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ArchiveError, CodecError
from repro.obs import metrics as obs_metrics

logger = logging.getLogger(__name__)

_QUARANTINED = obs_metrics.counter(
    "repro_archive_quarantined_total",
    "Files refused by the archive and moved into quarantine/.",
)
from repro.flows.shmem import (
    ROW_HEADER_SIZE,
    pack_row_header,
    unpack_row_header,
)
from repro.flows.table import FLOW_SCHEMA_VERSION

__all__ = [
    "MANIFEST_NAME",
    "PARTITION_SUFFIX",
    "ZONE_SUFFIX",
    "FEATURE_INDEX_SUFFIX",
    "QUARANTINE_DIR",
    "PARTITION_HEADER_SIZE",
    "PartitionKey",
    "pack_partition_header",
    "unpack_partition_header",
    "partition_file_name",
    "parse_partition_name",
    "ArchiveLayout",
]

MANIFEST_NAME = "MANIFEST.json"
PARTITION_SUFFIX = ".flows"
ZONE_SUFFIX = ".zone.json"
FEATURE_INDEX_SUFFIX = ".fidx.json"
QUARANTINE_DIR = "quarantine"
_TMP_PREFIX = ".tmp-"

#: Partition header: the shared zero-copy row-block header of
#: :mod:`repro.flows.shmem` (magic, schema version, reserved flags,
#: row count, padded to 32 bytes, little-endian like the payload) —
#: one codepath validates archive partitions and shm segments alike,
#: distinguished only by the magic.
PARTITION_HEADER_SIZE = ROW_HEADER_SIZE
_PARTITION_MAGIC = b"RPAR"

_NAME_RE = re.compile(
    r"^part(?P<slice>-?\d+)-h(?P<shard>\d+)-(?P<seq>\d+)"
    + re.escape(PARTITION_SUFFIX) + r"$"
)


@dataclass(frozen=True, slots=True, order=True)
class PartitionKey:
    """Identity of one partition file: ``(slice, shard, seq)``.

    The tuple order is the canonical scan order — slice (time) first,
    then shard, then write sequence — which is what keeps archive
    query results byte-identical to :class:`~repro.flows.store.FlowStore`
    (ties in the final sort resolve by input position).
    """

    slice_index: int
    shard: int
    seq: int


def pack_partition_header(rows: int) -> bytes:
    """The 32-byte header preceding ``rows`` raw ``FLOW_DTYPE`` rows."""
    return pack_row_header(rows, magic=_PARTITION_MAGIC)


def unpack_partition_header(header: bytes, source: object = "") -> int:
    """Validate a partition header; returns the row count.

    Raises :class:`~repro.errors.CodecError` on a bad magic or a
    schema-version mismatch (a partition written by a different
    ``FLOW_DTYPE`` revision must never be silently misparsed) and on a
    short header.
    """
    try:
        return unpack_row_header(
            header, magic=_PARTITION_MAGIC, source=source
        )
    except CodecError as exc:
        raise CodecError(
            str(exc).replace("row-block", "partition").replace(
                "row block", "partition"
            )
        ) from None


def partition_file_name(key: PartitionKey) -> str:
    """Canonical file name of a partition."""
    return (
        f"part{key.slice_index}-h{key.shard}-{key.seq}{PARTITION_SUFFIX}"
    )


def parse_partition_name(name: str) -> PartitionKey | None:
    """Parse a partition file name; ``None`` if it is not one."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    return PartitionKey(
        slice_index=int(match.group("slice")),
        shard=int(match.group("shard")),
        seq=int(match.group("seq")),
    )


def _atomic_write(
    path: Path, payload: bytes, exclusive: bool = False
) -> None:
    """Write ``payload`` to ``path`` via tmp + fsync + rename.

    With ``exclusive`` the final link is created with
    ``os.link`` — which fails atomically if ``path`` already exists —
    instead of ``os.replace``. Partition files use this so two writers
    racing on the same ``(slice, shard, seq)`` name (e.g. a long-lived
    ingest writer vs. a concurrent compaction) surface as a loud
    :class:`~repro.errors.ArchiveError` rather than one silently
    clobbering the other's data.
    """
    tmp = path.parent / f"{_TMP_PREFIX}{path.name}.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    if not exclusive:
        os.replace(tmp, path)
        return
    try:
        os.link(tmp, path)
    except FileExistsError as exc:
        os.unlink(tmp)
        raise ArchiveError(
            f"partition {path} already exists — another writer owns "
            f"this archive (one writer at a time; compaction counts)"
        ) from exc
    os.unlink(tmp)


class ArchiveLayout:
    """Path arithmetic and manifest I/O for one archive directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def partition_path(self, key: PartitionKey) -> Path:
        return self.root / partition_file_name(key)

    def zone_path(self, partition_path: Path) -> Path:
        """Sidecar path of a partition data file."""
        name = partition_path.name
        if not name.endswith(PARTITION_SUFFIX):
            raise ArchiveError(f"not a partition file: {partition_path}")
        return partition_path.parent / (
            name[: -len(PARTITION_SUFFIX)] + ZONE_SUFFIX
        )

    def fidx_path(self, partition_path: Path) -> Path:
        """Feature-index sidecar path of a partition data file.

        Optional: archives written before the planner (or with feature
        indexing off) simply have no ``.fidx.json`` files, and readers
        fall back to payload scans.
        """
        name = partition_path.name
        if not name.endswith(PARTITION_SUFFIX):
            raise ArchiveError(f"not a partition file: {partition_path}")
        return partition_path.parent / (
            name[: -len(PARTITION_SUFFIX)] + FEATURE_INDEX_SUFFIX
        )

    def ensure_root(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)

    # -- directory scan ----------------------------------------------------

    def partition_files(self) -> list[tuple[PartitionKey, Path]]:
        """All partition data files, in canonical ``(slice, shard, seq)``
        order. Non-partition names are ignored (the manifest, sidecars,
        the quarantine directory); orphaned temporaries are reported by
        :meth:`stray_files` instead."""
        found = []
        if not self.root.is_dir():
            return found
        for entry in self.root.iterdir():
            key = parse_partition_name(entry.name)
            if key is not None and entry.is_file():
                found.append((key, entry))
        found.sort(key=lambda pair: pair[0])
        return found

    def stray_files(self, min_age_seconds: float = 60.0) -> list[Path]:
        """Leftover ``.tmp-*`` files from interrupted writes.

        Only temporaries at least ``min_age_seconds`` old count: a
        *young* temporary is most likely a live writer's in-flight
        partition (data written, rename pending), and moving it aside
        would crash that writer and lose the partition. Genuinely
        orphaned temporaries age past the threshold and get swept by
        the next scan.
        """
        if not self.root.is_dir():
            return []
        cutoff = time.time() - min_age_seconds
        strays = []
        for entry in self.root.iterdir():
            if not entry.name.startswith(_TMP_PREFIX):
                continue
            try:
                if entry.is_file() and entry.stat().st_mtime <= cutoff:
                    strays.append(entry)
            except FileNotFoundError:
                continue  # renamed away mid-scan: not a stray
        return sorted(strays)

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a refused file (and its sidecar, if any) aside.

        Returns the quarantined data-file path. The move is a rename
        into ``quarantine/`` so the bytes survive for forensics; a
        name collision appends a numeric suffix rather than
        overwriting earlier evidence.
        """
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        counter = 1
        while target.exists():
            target = self.quarantine_dir / f"{path.name}.{counter}"
            counter += 1
        os.replace(path, target)
        note = target.with_name(target.name + ".reason")
        note.write_text(reason + "\n")
        if path.name.endswith(PARTITION_SUFFIX):
            for sidecar in (self.zone_path(path), self.fidx_path(path)):
                if sidecar.exists():
                    os.replace(
                        sidecar, self.quarantine_dir / sidecar.name
                    )
        logger.warning(
            "quarantined %s -> %s: %s", path.name, target, reason
        )
        _QUARANTINED.inc()
        return target

    # -- manifest ----------------------------------------------------------

    def write_manifest(self, slice_seconds: float, origin: float) -> None:
        """Persist the archive geometry (atomic; must not move later)."""
        existing = self.read_manifest()
        if existing is not None:
            if existing != (slice_seconds, origin):
                raise ArchiveError(
                    f"archive {self.root} already has geometry "
                    f"slice_seconds={existing[0]}, origin={existing[1]}; "
                    f"cannot change it to slice_seconds={slice_seconds}, "
                    f"origin={origin}"
                )
            return
        self.ensure_root()
        payload = json.dumps(
            {
                "schema": FLOW_SCHEMA_VERSION,
                "slice_seconds": float(slice_seconds),
                "origin": float(origin),
            },
            indent=2,
        ).encode()
        _atomic_write(self.manifest_path, payload + b"\n")

    def read_manifest(self) -> tuple[float, float] | None:
        """``(slice_seconds, origin)``, or ``None`` if not written yet."""
        try:
            raw = self.manifest_path.read_text()
        except FileNotFoundError:
            return None
        try:
            data = json.loads(raw)
            schema = int(data["schema"])
            geometry = (float(data["slice_seconds"]), float(data["origin"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise ArchiveError(
                f"corrupt archive manifest {self.manifest_path}: {exc}"
            ) from exc
        if schema != FLOW_SCHEMA_VERSION:
            raise CodecError(
                f"{self.manifest_path}: archive written with flow schema "
                f"version {schema}; this build reads version "
                f"{FLOW_SCHEMA_VERSION}"
            )
        return geometry

    def atomic_write(
        self, path: Path, payload: bytes, exclusive: bool = False
    ) -> None:
        """Crash-safe write used for partitions and sidecars."""
        _atomic_write(path, payload, exclusive=exclusive)
