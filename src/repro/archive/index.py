"""Zone maps: per-partition summaries that prune queries.

A :class:`ZoneMap` is the sidecar index of one partition file. It
stores just enough about the partition's rows — time bounds, per-column
min/max, small value dictionaries, counter sums, the union of TCP
flags — for a reader to decide *this partition cannot contribute to
this query* without touching a single payload byte. That decision must
be **sound, never complete**: :meth:`may_match` may return True for a
partition that matches nothing (the row-level mask then drops it), but
must never return False for a partition holding a matching row. The
equivalence suite asserts pruned results equal full scans under
Hypothesis-generated queries.

Per feature column the zone keeps ``min``/``max``/``distinct`` and,
when the partition has at most :data:`MAX_DICT_VALUES` distinct
values, the sorted value dictionary itself — which turns membership
primitives (``dst port 445``, ``src ip in [...]``) into exact
partition-level checks. High-cardinality columns fall back to range
pruning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.errors import ArchiveError
from repro.flows.filter import (
    And,
    CounterMatch,
    Direction,
    FilterNode,
    FlagsMatch,
    IpMatch,
    MatchAny,
    NetMatch,
    Not,
    Or,
    PortMatch,
    ProtoMatch,
    RouterMatch,
)
from repro.flows.table import FlowTable

__all__ = ["MAX_DICT_VALUES", "ZONE_COLUMNS", "ColumnZone", "ZoneMap"]

#: Value dictionaries are kept only up to this many distinct values.
MAX_DICT_VALUES = 64

#: Columns summarised per partition (the five mining features + router).
ZONE_COLUMNS = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "proto",
    "router",
)


@dataclass(frozen=True, slots=True)
class ColumnZone:
    """Summary of one integer column over a partition."""

    min: int
    max: int
    distinct: int
    #: Sorted value dictionary, or ``None`` when cardinality exceeds
    #: :data:`MAX_DICT_VALUES`.
    values: tuple[int, ...] | None

    @classmethod
    def from_column(cls, column: np.ndarray) -> "ColumnZone":
        unique = np.unique(column)
        values = (
            tuple(int(v) for v in unique)
            if len(unique) <= MAX_DICT_VALUES
            else None
        )
        return cls(
            min=int(unique[0]),
            max=int(unique[-1]),
            distinct=int(len(unique)),
            values=values,
        )

    # -- partition-level predicates ---------------------------------------

    def may_contain(self, wanted) -> bool:
        """Could any row hold one of ``wanted``? (exact with a dict)"""
        if self.values is not None:
            pool = set(self.values)
            return any(value in pool for value in wanted)
        return any(self.min <= value <= self.max for value in wanted)

    def may_satisfy(self, comparator: str, bound: float) -> bool:
        """Could ``value <comparator> bound`` hold for any row?"""
        if comparator in ("=", "=="):
            return self.may_contain((bound,))
        if comparator == "!=":
            return not (self.min == self.max == bound)
        if comparator == "<":
            return self.min < bound
        if comparator == "<=":
            return self.min <= bound
        if comparator == ">":
            return self.max > bound
        if comparator == ">=":
            return self.max >= bound
        return True  # unknown comparator: never prune

    def may_intersect_prefix(self, network: int, mask: int) -> bool:
        """Could any row fall inside CIDR ``network/mask``?"""
        if self.values is not None:
            return any(
                (value & mask) == network for value in self.values
            )
        low, high = network, network | (0xFFFFFFFF ^ mask)
        return not (self.max < low or self.min > high)


@dataclass(frozen=True, slots=True)
class ZoneMap:
    """The queryable summary of one partition."""

    rows: int
    min_start: float
    max_start: float
    min_end: float
    max_end: float
    min_duration: float
    max_duration: float
    min_packets: int
    max_packets: int
    min_bytes: int
    max_bytes: int
    sum_packets: int
    sum_bytes: int
    flags_union: int
    columns: Mapping[str, ColumnZone] = field(default_factory=dict)
    #: A sealed partition is immutable: compaction never rewrites it.
    sealed: bool = False
    #: Rows are sorted by start time (compaction output always is).
    sorted: bool = False
    #: ``(shards, key, seed, shard)`` when written shard-aware.
    shard_spec: tuple[int, str, int, int] | None = None
    #: File names this partition superseded (compaction provenance;
    #: a reader drops any live partition named here).
    replaces: tuple[str, ...] = ()

    # -- construction ------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: FlowTable,
        sealed: bool = False,
        sorted_rows: bool = False,
        shard_spec: tuple[int, str, int, int] | None = None,
        replaces: tuple[str, ...] = (),
    ) -> "ZoneMap":
        if not len(table):
            raise ArchiveError("refusing to zone-map an empty partition")
        starts, ends = table.start, table.end
        durations = ends - starts
        return cls(
            rows=len(table),
            min_start=float(starts.min()),
            max_start=float(starts.max()),
            min_end=float(ends.min()),
            max_end=float(ends.max()),
            min_duration=float(durations.min()),
            max_duration=float(durations.max()),
            min_packets=int(table.packets.min()),
            max_packets=int(table.packets.max()),
            min_bytes=int(table.bytes.min()),
            max_bytes=int(table.bytes.max()),
            sum_packets=table.total_packets(),
            sum_bytes=table.total_bytes(),
            flags_union=int(np.bitwise_or.reduce(table.tcp_flags)),
            columns={
                name: ColumnZone.from_column(table.column(name))
                for name in ZONE_COLUMNS
            },
            sealed=sealed,
            sorted=sorted_rows,
            shard_spec=shard_spec,
            replaces=tuple(replaces),
        )

    # -- (de)serialisation -------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "rows": self.rows,
            "min_start": self.min_start,
            "max_start": self.max_start,
            "min_end": self.min_end,
            "max_end": self.max_end,
            "min_duration": self.min_duration,
            "max_duration": self.max_duration,
            "min_packets": self.min_packets,
            "max_packets": self.max_packets,
            "min_bytes": self.min_bytes,
            "max_bytes": self.max_bytes,
            "sum_packets": self.sum_packets,
            "sum_bytes": self.sum_bytes,
            "flags_union": self.flags_union,
            "sealed": self.sealed,
            "sorted": self.sorted,
            "shard_spec": (
                list(self.shard_spec) if self.shard_spec else None
            ),
            "replaces": list(self.replaces),
            "columns": {
                name: {
                    "min": zone.min,
                    "max": zone.max,
                    "distinct": zone.distinct,
                    "values": (
                        list(zone.values)
                        if zone.values is not None
                        else None
                    ),
                }
                for name, zone in self.columns.items()
            },
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str, source: object = "") -> "ZoneMap":
        where = f"{source}: " if source else ""
        try:
            data = json.loads(text)
            columns = {
                name: ColumnZone(
                    min=int(zone["min"]),
                    max=int(zone["max"]),
                    distinct=int(zone["distinct"]),
                    values=(
                        tuple(int(v) for v in zone["values"])
                        if zone["values"] is not None
                        else None
                    ),
                )
                for name, zone in data["columns"].items()
            }
            shard_raw = data.get("shard_spec")
            shard_spec = (
                (
                    int(shard_raw[0]),
                    str(shard_raw[1]),
                    int(shard_raw[2]),
                    int(shard_raw[3]),
                )
                if shard_raw
                else None
            )
            return cls(
                rows=int(data["rows"]),
                min_start=float(data["min_start"]),
                max_start=float(data["max_start"]),
                min_end=float(data["min_end"]),
                max_end=float(data["max_end"]),
                min_duration=float(data["min_duration"]),
                max_duration=float(data["max_duration"]),
                min_packets=int(data["min_packets"]),
                max_packets=int(data["max_packets"]),
                min_bytes=int(data["min_bytes"]),
                max_bytes=int(data["max_bytes"]),
                sum_packets=int(data["sum_packets"]),
                sum_bytes=int(data["sum_bytes"]),
                flags_union=int(data["flags_union"]),
                columns=columns,
                sealed=bool(data.get("sealed", False)),
                sorted=bool(data.get("sorted", False)),
                shard_spec=shard_spec,
                replaces=tuple(data.get("replaces", ())),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise ArchiveError(
                f"{where}corrupt zone map: {exc}"
            ) from exc

    # -- pruning -----------------------------------------------------------

    def overlaps_window(self, start: float, end: float) -> bool:
        """Could any row *start* inside ``[start, end)``?"""
        return self.max_start >= start and self.min_start < end

    def covered_by_window(self, start: float, end: float) -> bool:
        """Do *all* rows start inside ``[start, end)``? (no time mask
        needed — the partition serves as one zero-copy mmap view)"""
        return self.min_start >= start and self.max_start < end

    def may_match(self, node: FilterNode) -> bool:
        """Could any row match the filter? Sound, not complete."""
        if isinstance(node, And):
            return all(self.may_match(child) for child in node.children)
        if isinstance(node, Or):
            return any(self.may_match(child) for child in node.children)
        if isinstance(node, MatchAny):
            return True
        if isinstance(node, Not):
            # Complement pruning needs "all rows match child", which
            # zone summaries cannot assert in general — never prune.
            return True
        if isinstance(node, IpMatch):
            return self._membership(
                node.direction, "src_ip", "dst_ip", node.addresses
            )
        if isinstance(node, NetMatch):
            network = int(node.prefix.network)
            mask = int(node.prefix.mask)
            sides = self._sides(node.direction, "src_ip", "dst_ip")
            return any(
                self.columns[side].may_intersect_prefix(network, mask)
                for side in sides
            )
        if isinstance(node, PortMatch):
            sides = self._sides(node.direction, "src_port", "dst_port")
            if node.comparator is None:
                return any(
                    self.columns[side].may_contain(node.ports)
                    for side in sides
                )
            (bound,) = node.ports
            return any(
                self.columns[side].may_satisfy(node.comparator, bound)
                for side in sides
            )
        if isinstance(node, ProtoMatch):
            return self.columns["proto"].may_contain((node.proto,))
        if isinstance(node, RouterMatch):
            return self.columns["router"].may_contain((node.router,))
        if isinstance(node, CounterMatch):
            bounds = {
                "packets": (self.min_packets, self.max_packets),
                "bytes": (self.min_bytes, self.max_bytes),
                "duration": (self.min_duration, self.max_duration),
            }.get(node.field)
            if bounds is None:
                return True
            zone = ColumnZone(
                min=bounds[0], max=bounds[1], distinct=2, values=None
            )
            return zone.may_satisfy(node.comparator, node.value)
        if isinstance(node, FlagsMatch):
            return (self.flags_union & node.flags) == node.flags
        return True  # unknown node type: never prune

    def _sides(
        self, direction: Direction, src: str, dst: str
    ) -> tuple[str, ...]:
        if direction is Direction.SRC:
            return (src,)
        if direction is Direction.DST:
            return (dst,)
        return (src, dst)

    def _membership(
        self, direction: Direction, src: str, dst: str, wanted
    ) -> bool:
        return any(
            self.columns[side].may_contain(wanted)
            for side in self._sides(direction, src, dst)
        )
