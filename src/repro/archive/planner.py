"""Query planning over an archive: sidecar indexes, pushdown, fan-out.

This module is the archive's second index layer and the brain behind
:class:`~repro.archive.reader.ArchiveReader`'s aggregate queries:

* :class:`FeatureIndex` — the ``.fidx.json`` sidecar written next to
  each partition: the **full** per-feature value histogram (value →
  flow count and packet sum) for the five mining features. Where the
  zone map answers *"could this partition match?"*, the feature index
  answers *"what would counting this partition produce?"* — exactly,
  without touching a payload byte.
* **Pushdown** — ``count`` answers from zone-map sums and
  ``top_feature_values`` from merged feature indexes whenever the
  query's window covers the candidate partitions and no row-level
  filter applies. Histogram merging is integer addition over sorted
  value arrays, so the pushed-down ranking is byte-identical to
  scanning the rows (the equivalence suite asserts it).
* **Parallel scans** — when payloads *must* be read and the reader
  holds a :class:`~repro.parallel.executor.ShardExecutor`, per-
  partition scan tasks fan out as ``(path, rows, window, filter)``
  tuples: each worker opens the partition's mmap directly and returns
  a tiny aggregate, so zero row bytes cross the pool in either
  direction.
* :class:`QueryPlan` — what the last query decided, partition by
  partition class: pruned, answered from sidecars, or scanned.
  ``repro archive query --explain`` renders it.

The planner is an *optimizer*, never an oracle: every pushdown path
has a row-scan fallback producing identical bytes, and a missing or
unreadable ``.fidx.json`` (archives written before this module, or
with indexing disabled) simply disqualifies the pushdown.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.archive.layout import PARTITION_HEADER_SIZE
from repro.errors import ArchiveError
from repro.flows.filter import FilterNode, compile_mask
from repro.flows.record import FLOW_FEATURES, FlowFeature
from repro.flows.table import FLOW_DTYPE, FlowTable

__all__ = [
    "FEATURE_INDEX_VERSION",
    "FEATURE_INDEX_COLUMNS",
    "FeatureIndex",
    "QueryPlan",
    "feature_column",
    "merge_histograms",
    "ranked_from_histogram",
]

FEATURE_INDEX_VERSION = 1

#: Columns indexed per partition — the five mining features
#: (:data:`~repro.flows.record.FLOW_FEATURES` column names).
FEATURE_INDEX_COLUMNS = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "proto",
)

_COLUMN_OF_FEATURE: dict[FlowFeature, str] = dict(
    zip(FLOW_FEATURES, FEATURE_INDEX_COLUMNS)
)


def feature_column(feature: FlowFeature) -> str:
    """Table column backing one mining feature (always indexed)."""
    return _COLUMN_OF_FEATURE[feature]


class FeatureIndex:
    """Per-feature value histograms of one partition (the ``.fidx``).

    For every indexed column: the sorted distinct values, the flow
    count per value and the packet sum per value — enough to answer
    any flows- or packets-weighted ranking over the partition without
    reading it. Exact integers throughout; merging indexes is
    addition.
    """

    __slots__ = ("rows", "_columns")

    def __init__(
        self,
        rows: int,
        columns: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self.rows = rows
        self._columns = columns

    @classmethod
    def from_table(cls, table: FlowTable) -> "FeatureIndex":
        columns: dict = {}
        packets = table.packets
        for name in FEATURE_INDEX_COLUMNS:
            values, inverse = np.unique(
                table.column(name), return_inverse=True
            )
            flows = np.bincount(inverse, minlength=len(values))
            packet_sums = np.zeros(len(values), dtype=np.int64)
            np.add.at(packet_sums, inverse, packets)
            columns[name] = (
                values,
                flows.astype(np.int64),
                packet_sums,
            )
        return cls(rows=len(table), columns=columns)

    def histogram(
        self, column: str, by_packets: bool = False
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(values, counts)`` of one column, or ``None`` if absent."""
        entry = self._columns.get(column)
        if entry is None:
            return None
        values, flows, packet_sums = entry
        return values, (packet_sums if by_packets else flows)

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    # -- (de)serialisation --------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": FEATURE_INDEX_VERSION,
                "rows": self.rows,
                "columns": {
                    name: {
                        "values": values.tolist(),
                        "flows": flows.tolist(),
                        "packets": packet_sums.tolist(),
                    }
                    for name, (
                        values, flows, packet_sums,
                    ) in self._columns.items()
                },
            }
        )

    @classmethod
    def from_json(cls, text: str, source: object = "") -> "FeatureIndex":
        where = f"{source}: " if source else ""
        try:
            data = json.loads(text)
            version = int(data["version"])
            if version != FEATURE_INDEX_VERSION:
                raise ArchiveError(
                    f"{where}feature index version {version}; this "
                    f"build reads version {FEATURE_INDEX_VERSION}"
                )
            columns = {}
            for name, entry in data["columns"].items():
                values = np.asarray(entry["values"], dtype=np.int64)
                flows = np.asarray(entry["flows"], dtype=np.int64)
                packets = np.asarray(entry["packets"], dtype=np.int64)
                if not (len(values) == len(flows) == len(packets)):
                    raise ArchiveError(
                        f"{where}ragged feature index for {name!r}"
                    )
                columns[name] = (values, flows, packets)
            return cls(rows=int(data["rows"]), columns=columns)
        except ArchiveError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise ArchiveError(
                f"{where}corrupt feature index: {exc}"
            ) from exc


def load_feature_index(path: Path) -> FeatureIndex | None:
    """Read one ``.fidx.json``; ``None`` when missing or unreadable.

    The index is an optimization, never the truth — a partition whose
    sidecar is absent (pre-planner archive) or corrupt simply falls
    back to a payload scan, which produces identical results.
    """
    try:
        text = path.read_text()
    except (FileNotFoundError, OSError):
        return None
    try:
        return FeatureIndex.from_json(text, source=path)
    except ArchiveError:
        return None


# -- histogram merging (the pushdown's arithmetic) ---------------------------

def merge_histograms(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Sum ``(values, counts)`` histograms into one sorted histogram.

    Integer addition over value-aligned counts: merging per-partition
    histograms equals histogramming the concatenated rows, which is
    what makes pushdown answers byte-identical to scans.
    """
    parts = [part for part in parts if len(part[0])]
    if not parts:
        empty = np.array([], dtype=np.int64)
        return empty, empty
    if len(parts) == 1:
        values, counts = parts[0]
        return values, counts.astype(np.int64)
    all_values = np.concatenate([values for values, _ in parts])
    merged_values, inverse = np.unique(all_values, return_inverse=True)
    merged_counts = np.zeros(len(merged_values), dtype=np.int64)
    np.add.at(
        merged_counts,
        inverse,
        np.concatenate([counts for _, counts in parts]),
    )
    return merged_values, merged_counts


def ranked_from_histogram(
    values: np.ndarray, counts: np.ndarray, n: int
) -> list[tuple[int, int]]:
    """Top-``n`` with the store ranking semantics over a histogram.

    Mirrors :func:`repro.flows.aggregate.ranked_feature_values`
    exactly — descending count, ties by the value's string rendering —
    so a pushed-down ranking and a scanned ranking are the same list.
    """
    ranked = sorted(
        zip(values.tolist(), counts.tolist()),
        key=lambda kv: (-kv[1], str(kv[0])),
    )
    return [(int(v), int(c)) for v, c in ranked[:n]]


# -- worker-side scan tasks ---------------------------------------------------

def _open_rows(path: str, rows: int) -> FlowTable:
    """Worker-side mmap of one partition's payload (zero-copy)."""
    data = np.memmap(
        path,
        dtype=FLOW_DTYPE,
        mode="r",
        offset=PARTITION_HEADER_SIZE,
        shape=(rows,),
    )
    return FlowTable(data)


def _scan_mask(
    table: FlowTable,
    start: float,
    end: float,
    node: FilterNode | None,
) -> np.ndarray:
    starts = table.start
    mask = (starts >= start) & (starts < end)
    if node is not None:
        mask &= compile_mask(node)(table)
    return mask


def count_rows(
    table: FlowTable,
    start: float,
    end: float,
    node: FilterNode | None,
) -> tuple[int, int, int, float, float] | None:
    """``(flows, packets, bytes, lo, hi)`` of one table's matching rows."""
    mask = _scan_mask(table, start, end, node)
    if not mask.any():
        return None
    selected = table.select(mask)
    return (
        len(selected),
        selected.total_packets(),
        selected.total_bytes(),
        float(selected.start.min()),
        float(selected.end.max()),
    )


def histogram_rows(
    table: FlowTable,
    start: float,
    end: float,
    node: FilterNode | None,
    column: str,
    by_packets: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """``(values, counts)`` of one table's matching rows."""
    mask = _scan_mask(table, start, end, node)
    empty = np.array([], dtype=np.int64)
    if not mask.any():
        return empty, empty
    selected = table.select(mask)
    values, inverse = np.unique(
        selected.column(column), return_inverse=True
    )
    if by_packets:
        counts = np.zeros(len(values), dtype=np.int64)
        np.add.at(counts, inverse, selected.packets)
    else:
        counts = np.bincount(inverse, minlength=len(values))
    return values, counts.astype(np.int64)


def scan_count_task(
    path: str,
    rows: int,
    start: float,
    end: float,
    node: FilterNode | None,
) -> tuple[int, int, int, float, float] | None:
    """Aggregate one partition: ``(flows, packets, bytes, lo, hi)``.

    Runs on a worker: opens the partition mmap directly (no rows cross
    the pool inbound) and returns five numbers (none cross outbound).
    """
    return count_rows(_open_rows(path, rows), start, end, node)


def scan_histogram_task(
    path: str,
    rows: int,
    start: float,
    end: float,
    node: FilterNode | None,
    column: str,
    by_packets: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """One partition's ``(values, counts)`` histogram after masking.

    The worker reduction behind the top-N fallback: whole rows stay in
    the worker; only the (much smaller) histogram returns.
    """
    return histogram_rows(
        _open_rows(path, rows), start, end, node, column, by_packets
    )


# -- the plan ----------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class QueryPlan:
    """What the planner decided for one query — ``--explain``'s body."""

    #: Which query surface ran: ``rows`` / ``count`` / ``top``.
    query: str
    partitions: int
    pruned_time: int
    pruned_filter: int
    #: Partitions answered entirely from sidecar metadata.
    sidecar_answered: int
    #: Partitions whose payload was actually read.
    scanned: int
    payload_bytes_read: int
    #: ``zone-map-stats`` / ``feature-index`` when an aggregate was
    #: answered without payload reads; ``None`` for row scans.
    pushdown: str | None = None
    #: Scan tasks fanned out over the executor (0 = in-process).
    parallel_tasks: int = 0

    @property
    def pruned(self) -> int:
        return self.pruned_time + self.pruned_filter

    def render(self) -> str:
        """Human-readable plan, one decision per line."""
        lines = [
            f"plan: {self.query}",
            f"  partitions:      {self.partitions}",
            f"  pruned:          {self.pruned} "
            f"({self.pruned_time} by time, "
            f"{self.pruned_filter} by zone map)",
            f"  sidecar answers: {self.sidecar_answered}",
            f"  payload scans:   {self.scanned} "
            f"({self.payload_bytes_read:,} bytes read)",
        ]
        if self.pushdown:
            lines.append(f"  pushdown:        {self.pushdown}")
        if self.parallel_tasks:
            lines.append(
                f"  parallel tasks:  {self.parallel_tasks} "
                f"(workers mmap partitions directly)"
            )
        return "\n".join(lines)
