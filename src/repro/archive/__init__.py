"""Persistent mmap'd columnar flow archive.

The durable leg of the deployment loop. The paper's system triages
open alarms against a *rotating on-disk NfDump archive*; this package
gives the reproduction the same substrate: closed stream windows,
spilled store slices and bulk-ingested traces persist as
time-partitioned (optionally shard-aware) files holding raw
little-endian :data:`~repro.flows.table.FLOW_DTYPE` rows — so a
memory-mapped partition *is* a :class:`~repro.flows.table.FlowTable`,
with no decode step between disk and the columnar hot path.

``layout``
    The directory contract: manifest (geometry + schema version),
    partition naming ``part<slice>-h<shard>-<seq>.flows``, the 32-byte
    versioned header, crash-safe atomic writes, quarantine.
``index``
    Zone maps — per-partition time bounds, per-feature min/max and
    value dictionaries, counter sums — and the sound
    partition-pruning logic over the nfdump filter AST.
``partition``
    One validated partition served as a read-only zero-copy
    ``np.memmap`` view.
``writer``
    :class:`ArchiveWriter` — buffered, vectorized, shard-aware ingest
    and the low-level atomic partition write.
``reader``
    :class:`ArchiveReader` — zone-map-pruned window+filter queries,
    byte-identical to :class:`~repro.flows.store.FlowStore` over the
    same rows, plus the FlowStore-compatible surface that lets
    :class:`~repro.system.backend.FlowBackend` (and the whole triage
    pipeline) run archive-backed.
``compaction``
    Merging small rotation spills into sorted, sealed partitions with
    crash-safe provenance.

``repro archive`` is the CLI (ingest / ls / query / compact / stats /
triage); ``--archive`` on ``repro stream`` persists closed windows so
detection survives process restarts.
"""

from repro.archive.compaction import CompactionResult, compact_archive
from repro.archive.index import MAX_DICT_VALUES, ColumnZone, ZoneMap
from repro.archive.layout import (
    ArchiveLayout,
    PartitionKey,
    parse_partition_name,
    partition_file_name,
)
from repro.archive.partition import Partition, load_partition
from repro.archive.reader import ArchiveReader, ArchiveStats, ScanStats
from repro.archive.writer import DEFAULT_SPILL_ROWS, ArchiveWriter

__all__ = [
    "ArchiveLayout",
    "PartitionKey",
    "partition_file_name",
    "parse_partition_name",
    "MAX_DICT_VALUES",
    "ColumnZone",
    "ZoneMap",
    "Partition",
    "load_partition",
    "DEFAULT_SPILL_ROWS",
    "ArchiveWriter",
    "ArchiveReader",
    "ArchiveStats",
    "ScanStats",
    "CompactionResult",
    "compact_archive",
]
