"""Compaction: merge rotation spills into sorted, sealed partitions.

A live archive accumulates many small partitions per rotation slice —
one per ingest spill, one per streamed window, one per shard flush.
Each carries its own file, sidecar and zone map, so query cost (and
directory churn) grows with write count, not data size. Compaction
restores the invariant an NfDump spool enjoys naturally — *one file
per capture interval* — by merging every ``(slice, shard)`` group of
unsealed partitions into a single partition whose rows are stably
sorted by start time, marked **sealed**: immutable, never compacted
again, the terminal state of archived data.

Compaction is crash-safe without locks: the merged partition is
written (atomically, under a fresh sequence number) with a
``replaces`` provenance list naming its inputs *before* any input is
deleted. A crash in between leaves both on disk; readers resolve the
duplication by dropping any live partition named in another's
``replaces`` list, so queries never double-count. Re-running
compaction completes the cleanup.

Merging preserves query semantics exactly: rows of a group concatenate
in sequence order (= write order = insertion order) and sort stably by
start, so the canonical ``(start, 5-tuple)`` query order — including
tie resolution — is byte-identical before and after compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.archive.partition import Partition
from repro.archive.reader import ArchiveReader
from repro.archive.writer import ArchiveWriter
from repro.flows.table import FlowTable

__all__ = ["CompactionResult", "compact_archive"]


@dataclass(frozen=True, slots=True)
class CompactionResult:
    """What one compaction pass did."""

    groups: int
    partitions_before: int
    partitions_after: int
    rows_compacted: int
    bytes_compacted: int


def _groups(
    partitions: list[Partition],
) -> dict[tuple[int, int], list[Partition]]:
    grouped: dict[tuple[int, int], list[Partition]] = {}
    for partition in partitions:
        key = (partition.key.slice_index, partition.key.shard)
        grouped.setdefault(key, []).append(partition)
    return grouped


def compact_archive(
    root: str | Path,
    reader: ArchiveReader | None = None,
) -> CompactionResult:
    """Merge every multi-file or unsealed ``(slice, shard)`` group.

    A group is left alone only when it is already terminal: exactly
    one partition, sealed. Returns counters; an empty archive (or one
    already fully compacted) is a no-op.
    """
    reader = reader or ArchiveReader(root)
    reader.refresh()
    writer = ArchiveWriter(root)
    # Recovery sweep: a crash between a previous pass's write and its
    # deletes leaves superseded inputs on disk. Readers already ignore
    # them (provenance wins); finishing the interrupted deletes here is
    # what makes "re-running compaction completes the cleanup" true.
    superseded = {
        name
        for partition in reader.partitions()
        for name in partition.zone.replaces
    }
    for _key, path in reader.layout.partition_files():
        if path.name in superseded:
            path.unlink(missing_ok=True)
            reader.layout.zone_path(path).unlink(missing_ok=True)
            reader.layout.fidx_path(path).unlink(missing_ok=True)
    grouped = _groups(reader.partitions())
    groups = 0
    merged_rows = 0
    merged_bytes = 0
    before = sum(len(group) for group in grouped.values())
    for (slice_index, shard), group in sorted(grouped.items()):
        if len(group) == 1 and group[0].zone.sealed:
            continue
        groups += 1
        group.sort(key=lambda p: p.key)
        merged = FlowTable.concat([p.table() for p in group])
        merged = merged.sorted_by_start()
        writer.write_partition(
            merged,
            slice_index=slice_index,
            shard=shard,
            sealed=True,
            sorted_rows=True,
            replaces=tuple(p.path.name for p in group),
        )
        merged_rows += len(merged)
        merged_bytes += sum(p.payload_bytes for p in group)
        for partition in group:
            # The sealed replacement is durable; now the inputs (and
            # their sidecars) can go. Partition tables are mmap views
            # over these files — drop our references first so the
            # mapping is not the only thing keeping deleted inodes
            # alive longer than needed.
            partition.path.unlink(missing_ok=True)
            reader.layout.zone_path(partition.path).unlink(
                missing_ok=True
            )
            reader.layout.fidx_path(partition.path).unlink(
                missing_ok=True
            )
    reader.refresh()
    return CompactionResult(
        groups=groups,
        partitions_before=before,
        partitions_after=len(reader.partitions()),
        rows_compacted=merged_rows,
        bytes_compacted=merged_bytes,
    )
