"""One on-disk partition: header-checked, zone-mapped, mmap-served.

A :class:`Partition` binds a data file to its parsed
:class:`~repro.archive.index.ZoneMap` and serves the payload as a
**zero-copy** :class:`~repro.flows.table.FlowTable`: the rows are a
read-only ``np.memmap`` view straight over the file at the 32-byte
header offset — opening a partition does not read, decode or copy the
payload. Page cache pressure is the only cost of a cold archive, and
a partition that prunes out of a query costs nothing at all.

Integrity is checked *before* a partition is served, from metadata
alone (header fields, file sizes, sidecar agreement — never a payload
scan):

* bad magic or a foreign schema version →
  :class:`~repro.errors.CodecError` (the file is well-formed but not
  ours to parse);
* truncated or inflated payload, row-count disagreement with the
  sidecar → :class:`~repro.errors.ArchiveError` (the reader
  quarantines the file and keeps serving the rest of the archive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.archive.index import ZoneMap
from repro.archive.layout import (
    FEATURE_INDEX_SUFFIX,
    PARTITION_HEADER_SIZE,
    PARTITION_SUFFIX,
    PartitionKey,
    unpack_partition_header,
)
from repro.errors import ArchiveError
from repro.flows.table import FLOW_DTYPE, FlowTable

__all__ = ["Partition", "load_partition"]

#: Sentinel distinguishing "not loaded yet" from "absent".
_FIDX_UNLOADED = object()


@dataclass
class Partition:
    """A servable partition: identity, files, zone map, lazy table."""

    key: PartitionKey
    path: Path
    zone: ZoneMap
    _table: FlowTable | None = field(default=None, repr=False)
    _fidx: object = field(default=_FIDX_UNLOADED, repr=False)

    @property
    def rows(self) -> int:
        return self.zone.rows

    @property
    def payload_bytes(self) -> int:
        return self.zone.rows * FLOW_DTYPE.itemsize

    def table(self) -> FlowTable:
        """The partition's rows as a zero-copy mmap-backed table.

        The mapping is opened read-only (``mode="r"``) and cached on
        the partition; every caller shares the same pages. Mutating
        the returned table's columns is impossible — the OS enforces
        the archive's immutability contract.
        """
        if self._table is None:
            data = np.memmap(
                self.path,
                dtype=FLOW_DTYPE,
                mode="r",
                offset=PARTITION_HEADER_SIZE,
                shape=(self.zone.rows,),
            )
            self._table = FlowTable(data)
        return self._table

    def feature_index(self):
        """The partition's ``.fidx.json`` sidecar, lazily loaded.

        Returns a :class:`~repro.archive.planner.FeatureIndex`, or
        ``None`` when the sidecar is missing or unreadable (archives
        written before the planner, or with indexing off) — the
        planner then falls back to scanning the payload, which gives
        the same answer.
        """
        if self._fidx is _FIDX_UNLOADED:
            from repro.archive.planner import load_feature_index

            name = self.path.name
            fidx = self.path.parent / (
                name[: -len(PARTITION_SUFFIX)] + FEATURE_INDEX_SUFFIX
            )
            self._fidx = load_feature_index(fidx)
        return self._fidx


def load_partition(
    key: PartitionKey, path: Path, zone_text: str
) -> Partition:
    """Validate and bind one partition file to its sidecar.

    Checks are metadata-only: the 32-byte header (magic, schema
    version, row count) and the exact file size the row count implies.
    Raises :class:`~repro.errors.CodecError` for foreign bytes and
    :class:`~repro.errors.ArchiveError` for torn ones.
    """
    zone = ZoneMap.from_json(zone_text, source=path)
    with open(path, "rb") as handle:
        header = handle.read(PARTITION_HEADER_SIZE)
    rows = unpack_partition_header(header, source=path)
    if rows != zone.rows:
        raise ArchiveError(
            f"{path}: header says {rows} rows, zone map says {zone.rows}"
        )
    expected = PARTITION_HEADER_SIZE + rows * FLOW_DTYPE.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise ArchiveError(
            f"{path}: file is {actual} bytes; {expected} expected "
            f"for {rows} rows — truncated or inflated partition"
        )
    return Partition(key=key, path=path, zone=zone)
