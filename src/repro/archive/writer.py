"""Appending partitions to an archive.

:class:`ArchiveWriter` is the single write path of the archive. It
owns the directory's geometry (rotation width + origin, persisted in
the manifest on first fix), allocates per-``(slice, shard)`` sequence
numbers (restart-safe: initialised from the files already on disk)
and emits partitions crash-safely — payload to a temporary name,
fsync, atomic rename, then the zone-map sidecar the same way. A
partition is servable exactly when both files exist under their final
names; any interruption leaves either nothing or a quarantinable
leftover, never a half-readable partition.

Two write paths:

* :meth:`write_partition` — one table, one known slice, one file.
  Used by the streaming ring (a sealed window is exactly one slice)
  and by compaction.
* :meth:`ingest_table` / :meth:`ingest_chunks` — arbitrary tables,
  partitioned by start time with one vectorized floor-divide (and
  optionally by shard hash), buffered per ``(slice, shard)`` and
  spilled whenever a buffer reaches ``spill_rows`` — so an unbounded
  chunk stream ingests with bounded memory. :meth:`flush` (or
  :meth:`close`, or the context manager exit) spills the remainder.

Writing shard-aware (``shard_spec``) splits every slice's rows with
the same stable hash the parallel subsystem uses
(:func:`repro.parallel.partition.shard_ids`), records the spec in
each sidecar, and thereby lets sharded scans later pick up per-shard
files directly instead of re-hashing rows.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.archive.index import ZoneMap
from repro.archive.layout import (
    ArchiveLayout,
    PartitionKey,
    pack_partition_header,
)
from repro.errors import ArchiveError
from repro.flows.table import FlowTable
from repro.flows.trace import DEFAULT_BIN_SECONDS
from repro.obs import events as obs_events, metrics as obs_metrics

if TYPE_CHECKING:
    from repro.parallel.partition import PartitionSpec

__all__ = ["DEFAULT_SPILL_ROWS", "ArchiveWriter"]

_PARTITIONS_WRITTEN = obs_metrics.counter(
    "repro_archive_partitions_written_total",
    "Partition files written (spills and sealed alike).",
)
_PARTITIONS_SEALED = obs_metrics.counter(
    "repro_archive_partitions_sealed_total",
    "Partitions written with the sealed flag (complete slices).",
)
_ROWS_ARCHIVED = obs_metrics.counter(
    "repro_archive_rows_total",
    "Flow rows persisted into partition files.",
)

#: Buffered rows per (slice, shard) before an automatic spill.
DEFAULT_SPILL_ROWS = 65_536


class ArchiveWriter:
    """Writes time-partitioned (optionally shard-aware) flow files."""

    def __init__(
        self,
        root: str | Path,
        slice_seconds: float | None = None,
        origin: float | None = None,
        shard_spec: "PartitionSpec | None" = None,
        spill_rows: int = DEFAULT_SPILL_ROWS,
        feature_indexes: bool = True,
    ) -> None:
        """``slice_seconds=None`` (the default) adopts an existing
        archive's rotation width, or :data:`DEFAULT_BIN_SECONDS` for a
        fresh directory; an *explicit* width must match the manifest
        exactly — reopening an archive under a different grid is an
        error, never a silent regrid."""
        if slice_seconds is not None and slice_seconds <= 0:
            raise ArchiveError(
                f"slice_seconds must be positive: {slice_seconds!r}"
            )
        if spill_rows < 1:
            raise ArchiveError(
                f"spill_rows must be >= 1: {spill_rows!r}"
            )
        self.layout = ArchiveLayout(root)
        self.layout.ensure_root()
        self.shard_spec = shard_spec
        self.spill_rows = spill_rows
        #: Emit ``.fidx.json`` feature-index sidecars (the planner's
        #: pushdown source). Off saves ingest CPU; queries still work,
        #: they just always scan payloads for top-N aggregates.
        self.feature_indexes = feature_indexes
        existing = self.layout.read_manifest()
        if existing is not None:
            manifest_width, manifest_origin = existing
            if slice_seconds is not None and \
                    slice_seconds != manifest_width:
                raise ArchiveError(
                    f"archive {root} rotates every {manifest_width}s; "
                    f"cannot reopen it with slice_seconds={slice_seconds}"
                )
            slice_seconds = manifest_width
            if origin is not None and origin != manifest_origin:
                raise ArchiveError(
                    f"archive {root} has origin {manifest_origin}; "
                    f"cannot reopen it with origin={origin}"
                )
            origin = manifest_origin
        elif slice_seconds is None:
            slice_seconds = DEFAULT_BIN_SECONDS
        self.slice_seconds = float(slice_seconds)
        self._origin = origin
        if origin is not None:
            self.layout.write_manifest(self.slice_seconds, origin)
        self._seq: dict[tuple[int, int], int] = {}
        for key, _path in self.layout.partition_files():
            bucket = (key.slice_index, key.shard)
            self._seq[bucket] = max(
                self._seq.get(bucket, -1), key.seq
            )
        self._buffers: dict[tuple[int, int], list[FlowTable]] = {}
        self._buffered_rows: dict[tuple[int, int], int] = {}

    # -- geometry ----------------------------------------------------------

    @property
    def origin(self) -> float | None:
        """Left edge of slice 0; ``None`` until the first row fixes it."""
        return self._origin

    def set_origin(self, origin: float) -> None:
        """Pin slice 0's left edge (idempotent for the same value)."""
        if self._origin is not None:
            if self._origin != origin:
                raise ArchiveError(
                    f"archive origin already fixed at {self._origin}; "
                    f"cannot move it to {origin}"
                )
            return
        self._origin = float(origin)
        self.layout.write_manifest(self.slice_seconds, self._origin)

    def _fix_origin(self, first_start: float) -> None:
        if self._origin is None:
            self.set_origin(
                math.floor(first_start / self.slice_seconds)
                * self.slice_seconds
            )

    def slice_interval(self, index: int) -> tuple[float, float]:
        """``[start, end)`` of slice ``index``."""
        if self._origin is None:
            raise ArchiveError("archive origin not fixed yet")
        start = self._origin + index * self.slice_seconds
        return (start, start + self.slice_seconds)

    # -- the low-level write -----------------------------------------------

    def write_partition(
        self,
        table: FlowTable,
        slice_index: int,
        shard: int = 0,
        sealed: bool = False,
        sorted_rows: bool = False,
        replaces: tuple[str, ...] = (),
    ) -> Path | None:
        """Write one table as one partition file of ``slice_index``.

        The caller asserts every row starts inside the slice (the
        rotation invariant readers prune by); a violating row raises.
        Empty tables write nothing and return ``None``.
        """
        if not len(table):
            return None
        self._fix_origin(float(table.start.min()))
        # Validate with the *routing* expression (the same floor-divide
        # every ingest path uses), not recomputed interval bounds: the
        # two grids disagree by one ulp near boundaries for fractional
        # widths, and a row must archive under exactly the slice it
        # routes to.
        indices = np.floor(
            (table.start - self._origin) / self.slice_seconds
        ).astype(np.int64)
        if int(indices.min()) != slice_index \
                or int(indices.max()) != slice_index:
            lo, hi = self.slice_interval(slice_index)
            raise ArchiveError(
                f"rows outside slice {slice_index} [{lo}, {hi}): "
                f"starts route to slices "
                f"[{int(indices.min())}, {int(indices.max())}]"
            )
        bucket = (slice_index, shard)
        seq = self._seq.get(bucket, -1) + 1
        self._seq[bucket] = seq
        key = PartitionKey(slice_index=slice_index, shard=shard, seq=seq)
        shard_spec = None
        if self.shard_spec is not None:
            spec = self.shard_spec
            shard_spec = (spec.shards, spec.key, spec.seed, shard)
        zone = ZoneMap.from_table(
            table,
            sealed=sealed,
            sorted_rows=sorted_rows,
            shard_spec=shard_spec,
            replaces=replaces,
        )
        data = np.ascontiguousarray(table._data)
        path = self.layout.partition_path(key)
        # Data first, sidecar second: a crash between the two leaves a
        # data file without a sidecar, which readers quarantine — never
        # a servable partition with unchecked bytes. Exclusive create:
        # a name collision (two writers racing one directory) is a
        # loud error, never a silent overwrite.
        self.layout.atomic_write(
            path,
            pack_partition_header(len(table)) + data.tobytes(),
            exclusive=True,
        )
        self.layout.atomic_write(
            self.layout.zone_path(path), zone.to_json().encode()
        )
        if self.feature_indexes:
            from repro.archive.planner import FeatureIndex

            # Third and last: the feature-index sidecar. Strictly
            # optional (readers treat a missing .fidx as "no pushdown,
            # scan the payload"), so a crash here still leaves a fully
            # servable partition.
            self.layout.atomic_write(
                self.layout.fidx_path(path),
                FeatureIndex.from_table(table).to_json().encode(),
            )
        if obs_metrics.enabled():
            _PARTITIONS_WRITTEN.inc()
            if sealed:
                _PARTITIONS_SEALED.inc()
            _ROWS_ARCHIVED.inc(len(table))
        if obs_events.enabled():
            obs_events.emit(
                "archive.partition",
                slice=slice_index,
                shard=shard,
                seq=seq,
                rows=len(table),
                sealed=sealed or None,
                path=path.name,
            )
        return path

    # -- buffered ingest ----------------------------------------------------

    def _route(self, table: FlowTable) -> None:
        """Partition one table into the (slice, shard) buffers."""
        indices = np.floor(
            (table.start - self._origin) / self.slice_seconds
        ).astype(np.int64)
        if self.shard_spec is not None and self.shard_spec.shards > 1:
            from repro.parallel.partition import shard_ids

            shards = shard_ids(table, self.shard_spec)
        else:
            shards = np.zeros(len(table), dtype=np.int64)
        for slice_index in np.unique(indices):
            slice_mask = indices == slice_index
            for shard in np.unique(shards[slice_mask]):
                rows = table.select(slice_mask & (shards == shard))
                bucket = (int(slice_index), int(shard))
                self._buffers.setdefault(bucket, []).append(rows)
                self._buffered_rows[bucket] = (
                    self._buffered_rows.get(bucket, 0) + len(rows)
                )

    def ingest_table(self, table: FlowTable) -> int:
        """Buffer one table's rows by (slice, shard); spill full buffers.

        Returns the number of rows ingested. Rows become *servable*
        when their buffer spills — call :meth:`flush` to make
        everything durable.
        """
        if not len(table):
            return 0
        self._fix_origin(float(table.start.min()))
        self._route(table)
        for bucket in [
            b
            for b, rows in self._buffered_rows.items()
            if rows >= self.spill_rows
        ]:
            self._spill(bucket)
        return len(table)

    def ingest_chunks(self, chunks: Iterable[FlowTable]) -> int:
        """Drain a chunk source through :meth:`ingest_table`."""
        total = 0
        for chunk in chunks:
            total += self.ingest_table(chunk)
        return total

    def _spill(self, bucket: tuple[int, int]) -> None:
        parts = self._buffers.pop(bucket, [])
        self._buffered_rows.pop(bucket, None)
        if not parts:
            return
        self.write_partition(
            FlowTable.concat(parts),
            slice_index=bucket[0],
            shard=bucket[1],
        )

    def flush(self) -> int:
        """Spill every buffered row; returns how many were written."""
        pending = sum(self._buffered_rows.values())
        for bucket in sorted(self._buffers):
            self._spill(bucket)
        return pending

    def close(self) -> None:
        """Flush and retire the writer (idempotent)."""
        self.flush()

    def __enter__(self) -> "ArchiveWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
