"""A GEANT-like backbone topology model.

The paper's deployment observes NetFlow from the 18 points-of-presence of
the GEANT Europe-wide research backbone. This module models exactly what
the generators and detectors need from that network:

* a set of PoPs, each with a customer address prefix and a traffic
  popularity weight (national networks differ hugely in size);
* per-PoP host populations with Zipf popularity;
* external (non-GEANT) address space for transit/Internet endpoints.

It deliberately does *not* model links or routing — NetFlow analysis in
the paper happens per exporting PoP, which is captured by the
``router`` field of each flow record.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SynthesisError
from repro.flows.addresses import AddressPlan, Prefix
from repro.synth.rand import ZipfSampler

__all__ = ["GEANT_POP_NAMES", "PointOfPresence", "Topology"]

#: The 18 GEANT points of presence circa 2009/2010 (city names).
GEANT_POP_NAMES: tuple[str, ...] = (
    "Amsterdam",
    "Athens",
    "Barcelona",
    "Bratislava",
    "Brussels",
    "Budapest",
    "Copenhagen",
    "Frankfurt",
    "Geneva",
    "London",
    "Ljubljana",
    "Luxembourg",
    "Madrid",
    "Milan",
    "Paris",
    "Prague",
    "Vienna",
    "Zurich",
)


@dataclass(frozen=True, slots=True)
class PointOfPresence:
    """One PoP: name, index, customer prefix and popularity weight."""

    index: int
    name: str
    prefix: Prefix
    weight: float


class Topology:
    """PoPs, address plan and endpoint sampling for trace synthesis.

    Parameters
    ----------
    pop_names:
        PoP labels; defaults to the 18 GEANT cities.
    parent_prefix:
        Address space carved into per-PoP /16 customer prefixes.
    hosts_per_pop:
        Size of each PoP's active host population; hosts are addressed
        deterministically inside the PoP prefix and picked with Zipf
        popularity (rank 0 = busiest server).
    zipf_alpha:
        Skew of both the PoP and host popularity distributions.
    """

    def __init__(
        self,
        pop_names: tuple[str, ...] = GEANT_POP_NAMES,
        parent_prefix: str = "10.0.0.0/8",
        hosts_per_pop: int = 4096,
        zipf_alpha: float = 1.1,
        external_prefix: str = "128.0.0.0/3",
    ) -> None:
        if not pop_names:
            raise SynthesisError("at least one PoP is required")
        if hosts_per_pop <= 0:
            raise SynthesisError("hosts_per_pop must be positive")
        parent = Prefix.parse(parent_prefix)
        self.plan = AddressPlan(parent, len(pop_names), pop_length=16)
        self.external = Prefix.parse(external_prefix)
        self.hosts_per_pop = hosts_per_pop
        # PoP weights: Zipf over a deterministic shuffle of the name list so
        # "big" PoPs are stable for a given name tuple.
        pop_sampler = ZipfSampler(len(pop_names), alpha=zipf_alpha)
        self.pops: list[PointOfPresence] = [
            PointOfPresence(
                index=i,
                name=name,
                prefix=self.plan.prefix_for(i),
                weight=pop_sampler.probability(i),
            )
            for i, name in enumerate(pop_names)
        ]
        self._pop_sampler = pop_sampler
        self._host_sampler = ZipfSampler(hosts_per_pop, alpha=zipf_alpha)

    # -- lookups -----------------------------------------------------------

    @property
    def pop_count(self) -> int:
        """Number of PoPs."""
        return len(self.pops)

    def pop_of(self, address: int) -> int | None:
        """PoP index owning ``address`` or ``None`` for external space."""
        return self.plan.pop_of(address)

    def pop_by_name(self, name: str) -> PointOfPresence:
        """Look a PoP up by its (case-insensitive) name."""
        wanted = name.strip().lower()
        for pop in self.pops:
            if pop.name.lower() == wanted:
                return pop
        raise SynthesisError(f"unknown PoP {name!r}")

    # -- endpoint sampling ----------------------------------------------------

    def random_pop(self, rng: random.Random) -> PointOfPresence:
        """Draw a PoP with popularity weighting."""
        return self.pops[self._pop_sampler.sample(rng)]

    def host_address(self, pop: PointOfPresence, host_rank: int) -> int:
        """Deterministic address of host ``host_rank`` inside ``pop``.

        Rank 0 maps to the .1.1-ish bottom of the prefix so popular
        servers have stable, low addresses.
        """
        if not 0 <= host_rank < self.hosts_per_pop:
            raise SynthesisError(
                f"host rank {host_rank} outside 0..{self.hosts_per_pop - 1}"
            )
        return pop.prefix.address_at(host_rank + 1)

    def random_internal_host(
        self, rng: random.Random, pop: PointOfPresence | None = None
    ) -> int:
        """Zipf-popular host inside ``pop`` (or a weighted random PoP)."""
        if pop is None:
            pop = self.random_pop(rng)
        return self.host_address(pop, self._host_sampler.sample(rng))

    def random_external_host(self, rng: random.Random) -> int:
        """Uniform random address outside the backbone."""
        return self.external.random_address(rng)

    def is_internal(self, address: int) -> bool:
        """True when the address belongs to a PoP customer prefix."""
        return self.pop_of(address) is not None
