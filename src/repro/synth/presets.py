"""Preset scenario construction — the ``scenario`` session source.

The CLI's ``synth`` command and the facade's ``scenario`` source share
one recipe: a GEANT-like topology with background traffic and named
anomalies injected into the second-to-last bin. The anomaly menu is a
plain dict, so the names double as the CLI's ``--anomaly`` choices and
the config file's ``anomalies = [...]`` values.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import SpecError
from repro.flows.addresses import ip_to_int
from repro.synth.anomalies import (
    NetworkScan,
    PortScan,
    ReflectorAttack,
    SynFlood,
    UdpFlood,
)
from repro.synth.background import BackgroundConfig
from repro.synth.scenario import LabeledTrace, Scenario
from repro.synth.topology import Topology

__all__ = ["ANOMALY_NAMES", "build_preset_scenario", "ScenarioSource"]

_ATTACKER = ip_to_int("203.191.64.165")


def _factories(topology: Topology):
    target = topology.host_address(topology.pops[9], 3)
    return {
        "port-scan": lambda i: PortScan(
            f"port-scan-{i}", _ATTACKER + i, target, 20_000,
            src_port=55548,
        ),
        "network-scan": lambda i: NetworkScan(
            f"network-scan-{i}", _ATTACKER + i,
            topology.pops[4].prefix.network, 15_000,
        ),
        "syn-flood": lambda i: SynFlood(
            f"syn-flood-{i}", target, 80, flow_count=15_000,
        ),
        "udp-flood": lambda i: UdpFlood(
            f"udp-flood-{i}", _ATTACKER + 64 + i, target,
            packets_total=3_000_000,
        ),
        "reflector": lambda i: ReflectorAttack(
            f"reflector-{i}", target, reflector_count=300,
            flow_count=20_000,
        ),
    }


#: Names accepted by ``--anomaly`` and ``[source] options.anomalies``.
ANOMALY_NAMES = tuple(sorted(_factories(Topology())))


def build_preset_scenario(
    bins: int = 6,
    fps: float = 25.0,
    anomalies: tuple[str, ...] | list[str] = (),
) -> Scenario:
    """The standard labelled scenario behind ``repro synth``.

    ``anomalies`` are injected, in order, into the second-to-last bin.
    Unknown names raise :class:`SpecError` listing the menu.
    """
    topology = Topology()
    scenario = Scenario(
        topology=topology,
        background=BackgroundConfig(flows_per_second=fps),
        bin_count=bins,
    )
    factories = _factories(topology)
    anomaly_bin = max(0, bins - 2)
    for index, name in enumerate(anomalies):
        if name not in factories:
            raise SpecError(
                f"unknown anomaly {name!r}; expected one of "
                f"{', '.join(ANOMALY_NAMES)}",
                field="source.options.anomalies",
            )
        scenario.add(factories[name](index), anomaly_bin)
    return scenario


class ScenarioSource:
    """``scenario`` source: a rendered synthetic labelled epoch.

    Options: ``bins`` (default 6), ``fps`` (background flows/second,
    default 25), ``seed`` (default 0), ``sampling`` (1/N packet
    sampling, default 1), ``anomalies`` (list of
    :data:`ANOMALY_NAMES`). Rendering happens once, lazily; the same
    labelled trace backs batch, stream and synth modes.
    """

    kind = "scenario"
    bounded = True

    _KNOWN = ("bins", "fps", "seed", "sampling", "anomalies")

    def __init__(self, spec) -> None:
        self.spec = spec
        options: Mapping[str, Any] = spec.options
        for key in options:
            if key not in self._KNOWN:
                raise SpecError(
                    f"unknown scenario option {key!r}; expected "
                    f"{', '.join(self._KNOWN)}",
                    field=f"source.options.{key}",
                )
        self.bins = int(options.get("bins", 6))
        self.fps = float(options.get("fps", 25.0))
        self.seed = int(options.get("seed", 0))
        self.sampling_rate = int(options.get("sampling", 1))
        self.anomalies = tuple(options.get("anomalies", ()))
        self._labeled: LabeledTrace | None = None

    def labeled(self) -> LabeledTrace:
        """The rendered labelled trace (cached)."""
        if self._labeled is None:
            scenario = build_preset_scenario(
                bins=self.bins, fps=self.fps, anomalies=self.anomalies
            )
            self._labeled = scenario.build(
                seed=self.seed, sampling_rate=self.sampling_rate
            )
        return self._labeled

    def trace(self):
        return self.labeled().trace

    def chunks(self, chunk_rows: int):
        from repro.stream.sources import table_chunks

        return table_chunks(self.trace().table, chunk_rows=chunk_rows)

    def describe(self) -> str:
        suffix = f" + {', '.join(self.anomalies)}" if self.anomalies else ""
        return f"scenario({self.bins} bins{suffix})"


from repro.api.registry import sources as _sources  # noqa: E402

_sources.register("scenario", ScenarioSource)
