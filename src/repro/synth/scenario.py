"""Scenario composition: background traffic plus labelled anomalies.

A :class:`Scenario` describes a measurement epoch — bin width, number of
bins, background intensity — and a set of anomaly injections placed at
specific bins. :meth:`Scenario.build` renders it into a
:class:`LabeledTrace`: one merged, time-sorted :class:`FlowTrace` plus
the ground-truth labels, optionally passed through a 1/N packet sampler
to model GEANT's sampled NetFlow.

The campaign experiments (EXP-S1/S2) generate dozens of scenarios from
seeds; the Table 1 experiment builds the specific port-scan + DDoS
scenario the paper walks through.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SynthesisError
from repro.flows.record import FlowRecord
from repro.flows.sampling import RandomSampler
from repro.flows.trace import DEFAULT_BIN_SECONDS, FlowTrace
from repro.synth.anomalies.base import AnomalyInjector, GroundTruth
from repro.synth.background import BackgroundConfig, BackgroundGenerator
from repro.synth.topology import Topology

__all__ = ["Injection", "LabeledTrace", "Scenario"]


@dataclass(frozen=True)
class Injection:
    """Placement of one injector inside a scenario.

    ``start_bin``/``end_bin`` index the scenario's bins; the anomaly is
    active over ``[origin + start_bin*bin, origin + end_bin*bin)``.
    """

    injector: AnomalyInjector
    start_bin: int
    end_bin: int

    def __post_init__(self) -> None:
        if self.start_bin < 0 or self.end_bin <= self.start_bin:
            raise SynthesisError(
                f"bad injection window [{self.start_bin}, {self.end_bin})"
            )


@dataclass
class LabeledTrace:
    """A rendered scenario: flows plus ground truth."""

    trace: FlowTrace
    truths: list[GroundTruth]
    topology: Topology
    sampling_rate: int = 1
    seed: int = 0

    def truth_by_id(self, anomaly_id: str) -> GroundTruth:
        """Look up one anomaly's ground truth."""
        for truth in self.truths:
            if truth.anomaly_id == anomaly_id:
                return truth
        raise SynthesisError(f"unknown anomaly id {anomaly_id!r}")

    def anomalous_flows(self, truth: GroundTruth) -> list[FlowRecord]:
        """Flows of the trace belonging to ``truth`` (post-sampling)."""
        return truth.anomalous_flows(
            self.trace.between(truth.start, truth.end)
        )


@dataclass
class Scenario:
    """Declarative description of a labelled measurement epoch."""

    topology: Topology = field(default_factory=Topology)
    background: BackgroundConfig = field(default_factory=BackgroundConfig)
    bin_seconds: float = DEFAULT_BIN_SECONDS
    bin_count: int = 12
    origin: float = 0.0
    injections: list[Injection] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.bin_seconds <= 0 or self.bin_count <= 0:
            raise SynthesisError("bin_seconds and bin_count must be positive")

    # -- construction helpers -------------------------------------------------

    def add(
        self, injector: AnomalyInjector, start_bin: int, end_bin: int | None = None
    ) -> "Scenario":
        """Add an injection (default: one bin long). Returns self."""
        if end_bin is None:
            end_bin = start_bin + 1
        self.injections.append(Injection(injector, start_bin, end_bin))
        return self

    def bin_interval(self, index: int) -> tuple[float, float]:
        """``[start, end)`` of scenario bin ``index``."""
        start = self.origin + index * self.bin_seconds
        return (start, start + self.bin_seconds)

    @property
    def span(self) -> tuple[float, float]:
        """``[origin, end-of-last-bin)``."""
        return (self.origin, self.origin + self.bin_count * self.bin_seconds)

    # -- rendering ---------------------------------------------------------

    def build(
        self, seed: int = 0, sampling_rate: int = 1
    ) -> LabeledTrace:
        """Render the scenario into a labelled (optionally sampled) trace.

        The background and every injection derive their own RNG from
        ``seed`` so adding an injection never perturbs the background.
        Sampling, when requested, thins the *merged* trace exactly as a
        router line card would, then ground-truth volume counters keep
        their unsampled values (they describe what really happened).
        """
        for injection in self.injections:
            if injection.end_bin > self.bin_count:
                raise SynthesisError(
                    f"injection {injection.injector.anomaly_id!r} ends at bin "
                    f"{injection.end_bin} beyond the scenario's "
                    f"{self.bin_count} bins"
                )
        start, end = self.span
        generator = BackgroundGenerator(self.topology, self.background)
        flows: list[FlowRecord] = list(
            generator.generate(start, end, seed=seed)
        )
        truths: list[GroundTruth] = []
        for index, injection in enumerate(self.injections):
            window = (
                self.bin_interval(injection.start_bin)[0],
                self.bin_interval(injection.end_bin - 1)[1],
            )
            rng = random.Random(
                f"{seed}/{index}/{injection.injector.anomaly_id}"
            )
            injected, truth = injection.injector.inject(
                window[0], window[1], rng
            )
            flows.extend(injected)
            truths.append(truth)

        if sampling_rate > 1:
            sampler = RandomSampler(
                sampling_rate, seed=seed ^ 0x5A5A5A5A
            )
            flows = list(sampler.sample(flows))

        trace = FlowTrace(
            flows, bin_seconds=self.bin_seconds, origin=self.origin
        )
        return LabeledTrace(
            trace=trace,
            truths=truths,
            topology=self.topology,
            sampling_rate=sampling_rate,
            seed=seed,
        )
