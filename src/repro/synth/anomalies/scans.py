"""Scan injectors: horizontal port scans and network scans.

The paper's showcase anomaly (Table 1) is a port scan: one source host
probing many destination ports of one target from a fixed source port
(55548 in the paper), producing hundreds of thousands of tiny TCP flows
that all share ``srcIP``, ``dstIP`` and ``srcPort`` — a textbook frequent
itemset. NetReflex catches such scans through destination-port entropy
shifts; extraction recovers the itemset.
"""

from __future__ import annotations

import random

from repro.errors import SynthesisError
from repro.flows.record import FlowFeature, FlowRecord, Protocol, TcpFlags
from repro.synth.anomalies.base import (
    AnomalyInjector,
    AnomalyKind,
    GroundTruth,
    Signature,
)

__all__ = ["PortScan", "NetworkScan"]


class PortScan(AnomalyInjector):
    """One scanner sweeping destination ports of a single target.

    Parameters
    ----------
    scanner, target:
        IPv4 integers of the attacker and the scanned host.
    flow_count:
        Number of probe flows to emit (the paper's case shows ~312K
        flows; tests use far fewer).
    src_port:
        Fixed source port (the paper's scanner used 55548). ``None``
        draws a fresh ephemeral port per probe, weakening the itemset to
        {srcIP, dstIP} — useful for ablations.
    syn_only:
        Emit pure-SYN probes (half-open scan) when True.
    """

    kind = AnomalyKind.PORT_SCAN

    def __init__(
        self,
        anomaly_id: str,
        scanner: int,
        target: int,
        flow_count: int,
        src_port: int | None = 55548,
        router: int = 0,
        syn_only: bool = True,
    ) -> None:
        super().__init__(anomaly_id)
        if flow_count <= 0:
            raise SynthesisError("flow_count must be positive")
        if src_port is not None and not 0 <= src_port <= 0xFFFF:
            raise SynthesisError(f"bad src_port {src_port!r}")
        self.scanner = scanner
        self.target = target
        self.flow_count = flow_count
        self.src_port = src_port
        self.router = router
        self.syn_only = syn_only

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        flags = TcpFlags.SYN if self.syn_only else (TcpFlags.SYN | TcpFlags.ACK)
        flows = []
        # Sequential sweep with wraparound; dst ports cycle 1..65535 so a
        # scan larger than the port space revisits ports (as real
        # scanners configured for multiple passes do).
        port_cursor = rng.randint(1, 0xFFFF)
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            dst_port = 1 + (port_cursor + index) % 0xFFFF
            src_port = (
                self.src_port
                if self.src_port is not None
                else rng.randint(1024, 65535)
            )
            packets = 1 if self.syn_only else rng.randint(1, 3)
            flow_start = start + offset
            flows.append(
                FlowRecord(
                    src_ip=self.scanner,
                    dst_ip=self.target,
                    src_port=src_port,
                    dst_port=dst_port,
                    proto=Protocol.TCP,
                    packets=packets,
                    bytes=packets * 40,
                    start=flow_start,
                    end=flow_start + 0.001,
                    tcp_flags=int(flags),
                    router=self.router,
                )
            )
        items = {
            FlowFeature.SRC_IP: self.scanner,
            FlowFeature.DST_IP: self.target,
            FlowFeature.PROTO: int(Protocol.TCP),
        }
        if self.src_port is not None:
            items[FlowFeature.SRC_PORT] = self.src_port
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(items, description="port scan probe flows")
            ],
        )
        truth.tally(flows)
        return flows, truth


class NetworkScan(AnomalyInjector):
    """One scanner probing a fixed service port across many hosts.

    All probe flows share ``srcIP``, ``dstPort`` and ``proto`` while the
    destination IP sweeps a prefix; destination-IP entropy spikes, which
    is the other scan pattern NetReflex flags.
    """

    kind = AnomalyKind.NETWORK_SCAN

    def __init__(
        self,
        anomaly_id: str,
        scanner: int,
        target_network: int,
        target_count: int,
        dst_port: int = 445,
        router: int = 0,
    ) -> None:
        super().__init__(anomaly_id)
        if target_count <= 0:
            raise SynthesisError("target_count must be positive")
        if not 0 <= dst_port <= 0xFFFF:
            raise SynthesisError(f"bad dst_port {dst_port!r}")
        self.scanner = scanner
        self.target_network = target_network
        self.target_count = target_count
        self.dst_port = dst_port
        self.router = router

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        flows = []
        for index in range(self.target_count):
            offset = duration * index / self.target_count
            flow_start = start + offset
            flows.append(
                FlowRecord(
                    src_ip=self.scanner,
                    dst_ip=self.target_network + index,
                    src_port=rng.randint(1024, 65535),
                    dst_port=self.dst_port,
                    proto=Protocol.TCP,
                    packets=1,
                    bytes=40,
                    start=flow_start,
                    end=flow_start + 0.001,
                    tcp_flags=int(TcpFlags.SYN),
                    router=self.router,
                )
            )
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(
                    {
                        FlowFeature.SRC_IP: self.scanner,
                        FlowFeature.DST_PORT: self.dst_port,
                        FlowFeature.PROTO: int(Protocol.TCP),
                    },
                    description="network scan probe flows",
                )
            ],
        )
        truth.tally(flows)
        return flows, truth
