"""Anomaly injectors and ground-truth labelling."""

from repro.synth.anomalies.base import (
    AnomalyInjector,
    AnomalyKind,
    GroundTruth,
    Signature,
)
from repro.synth.anomalies.floods import SynFlood, UdpFlood
from repro.synth.anomalies.other import (
    AlphaFlow,
    FlashCrowd,
    ReflectorAttack,
    StealthyAnomaly,
)
from repro.synth.anomalies.scans import NetworkScan, PortScan

__all__ = [
    "AnomalyInjector",
    "AnomalyKind",
    "GroundTruth",
    "Signature",
    "SynFlood",
    "UdpFlood",
    "AlphaFlow",
    "FlashCrowd",
    "ReflectorAttack",
    "StealthyAnomaly",
    "NetworkScan",
    "PortScan",
]
