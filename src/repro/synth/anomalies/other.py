"""Further anomaly injectors: reflectors, alpha flows, flash crowds and
stealthy anomalies.

The GEANT evaluation reports that 6% of alarms yielded no meaningful
itemsets — "a stealthy anomaly not captured by our extraction technique
or a false-positive alarm". :class:`StealthyAnomaly` models exactly that
failure mode: flows spread so thinly over feature values that no itemset
reaches any support threshold, giving the campaign benchmarks their
negative cases.
"""

from __future__ import annotations

import random

from repro.errors import SynthesisError
from repro.flows.record import FlowFeature, FlowRecord, Protocol, TcpFlags
from repro.synth.anomalies.base import (
    AnomalyInjector,
    AnomalyKind,
    GroundTruth,
    Signature,
)

__all__ = ["ReflectorAttack", "AlphaFlow", "FlashCrowd", "StealthyAnomaly"]


class ReflectorAttack(AnomalyInjector):
    """A DNS/NTP reflection flood: many reflectors answer toward one victim.

    All flows share ``dstIP``, ``srcPort`` (the reflected service) and
    ``proto=UDP`` while source IPs spread across reflectors.
    """

    kind = AnomalyKind.REFLECTOR

    def __init__(
        self,
        anomaly_id: str,
        victim: int,
        reflector_count: int,
        flow_count: int,
        service_port: int = 53,
        router: int = 0,
        reflector_space_start: int = 0xD0000000,
    ) -> None:
        super().__init__(anomaly_id)
        if reflector_count <= 0 or flow_count <= 0:
            raise SynthesisError("counts must be positive")
        self.victim = victim
        self.reflector_count = reflector_count
        self.flow_count = flow_count
        self.service_port = service_port
        self.router = router
        self.reflector_space_start = reflector_space_start

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        reflectors = [
            self.reflector_space_start + rng.randrange(1 << 22)
            for _ in range(self.reflector_count)
        ]
        flows = []
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            flow_start = start + offset
            packets = rng.randint(2, 30)
            flows.append(
                FlowRecord(
                    src_ip=rng.choice(reflectors),
                    dst_ip=self.victim,
                    src_port=self.service_port,
                    dst_port=rng.randint(1024, 65535),
                    proto=Protocol.UDP,
                    packets=packets,
                    # Amplified responses: large packets.
                    bytes=packets * rng.randint(512, 1500),
                    start=flow_start,
                    end=flow_start + rng.random(),
                    router=self.router,
                )
            )
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(
                    {
                        FlowFeature.DST_IP: self.victim,
                        FlowFeature.SRC_PORT: self.service_port,
                        FlowFeature.PROTO: int(Protocol.UDP),
                    },
                    description="reflected amplification flows",
                )
            ],
        )
        truth.tally(flows)
        return flows, truth


class AlphaFlow(AnomalyInjector):
    """A small number of extremely high-volume transfers (alpha flows).

    Classic byte-volume anomaly: one or two flows, gigabytes of traffic.
    Like the UDP flood it is invisible to flow-support mining; unlike it,
    it is benign (bulk science transfers are GEANT's daily business).
    """

    kind = AnomalyKind.ALPHA_FLOW

    def __init__(
        self,
        anomaly_id: str,
        source: int,
        target: int,
        packets_total: int,
        flow_count: int = 2,
        dst_port: int = 873,  # rsync-style bulk transfer
        router: int = 0,
    ) -> None:
        super().__init__(anomaly_id)
        if flow_count <= 0 or packets_total < flow_count:
            raise SynthesisError("bad flow/packet counts")
        self.source = source
        self.target = target
        self.packets_total = packets_total
        self.flow_count = flow_count
        self.dst_port = dst_port
        self.router = router

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        per_flow = self.packets_total // self.flow_count
        flows = []
        for index in range(self.flow_count):
            flow_start = start + duration * index / self.flow_count * 0.25
            packets = per_flow if index else per_flow + (
                self.packets_total - per_flow * self.flow_count
            )
            flows.append(
                FlowRecord(
                    src_ip=self.source,
                    dst_ip=self.target,
                    src_port=rng.randint(1024, 65535),
                    dst_port=self.dst_port,
                    proto=Protocol.TCP,
                    packets=packets,
                    bytes=packets * 1460,
                    start=flow_start,
                    end=end - 1e-4,
                    tcp_flags=int(TcpFlags.ACK | TcpFlags.PSH),
                    router=self.router,
                )
            )
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(
                    {
                        FlowFeature.SRC_IP: self.source,
                        FlowFeature.DST_IP: self.target,
                        FlowFeature.DST_PORT: self.dst_port,
                        FlowFeature.PROTO: int(Protocol.TCP),
                    },
                    description="bulk transfer alpha flows",
                )
            ],
        )
        truth.tally(flows)
        return flows, truth


class FlashCrowd(AnomalyInjector):
    """Many independent clients rushing one service (port 80 by default).

    Shares the {dstIP, dstPort} itemset shape with a DDoS but with
    realistic session behaviour; useful for testing classification.
    """

    kind = AnomalyKind.FLASH_CROWD

    def __init__(
        self,
        anomaly_id: str,
        server: int,
        client_count: int,
        flow_count: int,
        dst_port: int = 80,
        router: int = 0,
        client_space_start: int = 0xA8000000,
    ) -> None:
        super().__init__(anomaly_id)
        if client_count <= 0 or flow_count <= 0:
            raise SynthesisError("counts must be positive")
        self.server = server
        self.client_count = client_count
        self.flow_count = flow_count
        self.dst_port = dst_port
        self.router = router
        self.client_space_start = client_space_start

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        clients = [
            self.client_space_start + rng.randrange(1 << 24)
            for _ in range(self.client_count)
        ]
        flows = []
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            flow_start = start + offset
            packets = rng.randint(4, 60)
            flows.append(
                FlowRecord(
                    src_ip=rng.choice(clients),
                    dst_ip=self.server,
                    src_port=rng.randint(1024, 65535),
                    dst_port=self.dst_port,
                    proto=Protocol.TCP,
                    packets=packets,
                    bytes=packets * rng.randint(200, 1400),
                    start=flow_start,
                    end=flow_start + rng.uniform(0.5, 30.0),
                    tcp_flags=int(
                        TcpFlags.SYN | TcpFlags.ACK | TcpFlags.PSH | TcpFlags.FIN
                    ),
                    router=self.router,
                )
            )
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(
                    {
                        FlowFeature.DST_IP: self.server,
                        FlowFeature.DST_PORT: self.dst_port,
                        FlowFeature.PROTO: int(Protocol.TCP),
                    },
                    description="flash crowd sessions",
                )
            ],
        )
        truth.tally(flows)
        return flows, truth


class StealthyAnomaly(AnomalyInjector):
    """An anomaly with no extractable itemset (the paper's 6% bucket).

    Flows are scattered over random sources, destinations and ports so
    that no feature combination accumulates meaningful support in either
    flows or packets. The detector may still alarm (entropy noise), but
    extraction *should* come back empty — the benchmarks count that as
    the expected negative outcome, not a failure.
    """

    kind = AnomalyKind.STEALTHY

    def __init__(
        self,
        anomaly_id: str,
        flow_count: int = 40,
        router: int = 0,
        address_space_start: int = 0xB0000000,
    ) -> None:
        super().__init__(anomaly_id)
        if flow_count <= 0:
            raise SynthesisError("flow_count must be positive")
        self.flow_count = flow_count
        self.router = router
        self.address_space_start = address_space_start

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        flows = []
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            flow_start = start + offset
            flows.append(
                FlowRecord(
                    src_ip=self.address_space_start + rng.randrange(1 << 26),
                    dst_ip=self.address_space_start + rng.randrange(1 << 26),
                    src_port=rng.randint(1024, 65535),
                    dst_port=rng.randint(1, 65535),
                    proto=rng.choice(
                        [int(Protocol.TCP), int(Protocol.UDP)]
                    ),
                    packets=rng.randint(1, 4),
                    bytes=rng.randint(40, 600),
                    start=flow_start,
                    end=flow_start + rng.random(),
                    router=self.router,
                )
            )
        # The only honest "signature" is the time window itself; use a
        # protocol item as a formal placeholder and mark the truth as
        # unextractable through the kind.
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(
                    {FlowFeature.PROTO: int(Protocol.TCP)},
                    description="stealthy scattered probes (no itemset)",
                )
            ],
            detector_visible=[],
            notes="expected to yield no meaningful itemsets",
        )
        truth.tally(flows)
        return flows, truth
