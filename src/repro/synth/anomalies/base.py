"""Anomaly-injector framework and ground-truth labels.

Each injector synthesises the flows of one anomaly (a scan, a flood, ...)
over a time interval and returns, alongside the flows, a
:class:`GroundTruth` record: the interval, the anomaly class and one or
more :class:`Signature` objects — the set of feature values every flow of
that anomaly component shares. Signatures are exactly the itemsets a
perfect extractor should return, which makes evaluation mechanical:
the paper's authors validated extraction manually against NOC tickets;
we validate against injected labels.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import SynthesisError
from repro.flows.record import (
    FlowFeature,
    FlowRecord,
    feature_value,
    format_feature_value,
)
from repro.taxonomy import AnomalyKind

__all__ = [
    "AnomalyKind",
    "Signature",
    "GroundTruth",
    "AnomalyInjector",
]


@dataclass(frozen=True)
class Signature:
    """Feature values shared by all flows of one anomaly component.

    ``items`` maps flow features to the common value; features absent
    from the mapping are wildcards (the ``*`` of the paper's Table 1).
    """

    items: Mapping[FlowFeature, int]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.items:
            raise SynthesisError("a signature needs at least one item")

    def matches(self, flow: FlowRecord) -> bool:
        """True when the flow carries every signature value."""
        return all(
            feature_value(flow, feat) == value
            for feat, value in self.items.items()
        )

    def as_dict(self) -> dict[FlowFeature, int]:
        """Plain-dict copy of the signature items."""
        return dict(self.items)

    def render(self, anonymize: bool = False) -> str:
        """Human-readable ``feature=value`` listing."""
        parts = [
            f"{feat.value}={format_feature_value(feat, value, anonymize)}"
            for feat, value in sorted(
                self.items.items(), key=lambda kv: kv[0].value
            )
        ]
        return ", ".join(parts)


@dataclass
class GroundTruth:
    """Everything the evaluation needs to score one injected anomaly."""

    anomaly_id: str
    kind: AnomalyKind
    start: float
    end: float
    signatures: list[Signature]
    flow_count: int = 0
    packet_count: int = 0
    byte_count: int = 0
    #: Signatures the simulated detector reports in its alarm meta-data.
    #: ``None`` (the default) means all of them; an explicit empty list
    #: means the detector sees nothing (stealthy anomalies). Scenarios
    #: blank out entries to model the paper's "detector missed part of
    #: the anomaly" cases.
    detector_visible: list[Signature] | None = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise SynthesisError(
                f"anomaly interval is empty: [{self.start}, {self.end})"
            )
        if not self.signatures:
            raise SynthesisError("ground truth requires >= 1 signature")
        if self.detector_visible is None:
            self.detector_visible = list(self.signatures)

    def matches(self, flow: FlowRecord) -> bool:
        """True when ``flow`` belongs to this anomaly."""
        if not (self.start <= flow.start < self.end):
            return False
        return any(sig.matches(flow) for sig in self.signatures)

    def anomalous_flows(
        self, flows: Iterable[FlowRecord]
    ) -> list[FlowRecord]:
        """Subset of ``flows`` belonging to this anomaly."""
        return [flow for flow in flows if self.matches(flow)]

    def tally(self, flows: Sequence[FlowRecord]) -> None:
        """Record the injected volume counters."""
        self.flow_count = len(flows)
        self.packet_count = sum(f.packets for f in flows)
        self.byte_count = sum(f.bytes for f in flows)


class AnomalyInjector(abc.ABC):
    """Base class: synthesises one anomaly's flows plus its label."""

    #: Class of anomaly the injector produces.
    kind: AnomalyKind

    def __init__(self, anomaly_id: str) -> None:
        if not anomaly_id:
            raise SynthesisError("anomaly_id must be non-empty")
        self.anomaly_id = anomaly_id

    @abc.abstractmethod
    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        """Generate the anomaly's flows over ``[start, end)``.

        Implementations must return flows whose start times lie inside
        the interval and a fully populated :class:`GroundTruth`.
        """

    def _check_interval(self, start: float, end: float) -> None:
        if end <= start:
            raise SynthesisError(
                f"{self.anomaly_id}: empty interval [{start}, {end})"
            )
