"""Flood injectors: distributed SYN floods and point-to-point UDP floods.

Two flood shapes matter for the paper's story:

* **TCP SYN (D)DoS** — many sources, one target IP/port, vast numbers of
  tiny flows: trivially extracted by *flow*-support mining (Table 1's
  3rd/4th itemsets are two simultaneous port-80 DDoS).
* **Point-to-point UDP floods** — a *small* number of flows carrying a
  *huge* number of packets, frequent in GEANT. Flow-support Apriori
  misses them entirely; this is the case that motivated the extended
  Apriori's packet-based support ([5], demo §1).
"""

from __future__ import annotations

import random

from repro.errors import SynthesisError
from repro.flows.record import FlowFeature, FlowRecord, Protocol, TcpFlags
from repro.synth.anomalies.base import (
    AnomalyInjector,
    AnomalyKind,
    GroundTruth,
    Signature,
)

__all__ = ["SynFlood", "UdpFlood"]


class SynFlood(AnomalyInjector):
    """A (D)DoS SYN flood against one target IP and port.

    ``source_count`` controls distribution: 1 models a single-source DoS,
    larger values a botnet/spoofed DDoS. Sources are drawn once and then
    reused across flows so per-source support stays below the target's.
    """

    kind = AnomalyKind.SYN_FLOOD

    def __init__(
        self,
        anomaly_id: str,
        target: int,
        dst_port: int,
        flow_count: int,
        source_count: int = 256,
        source_space_start: int = 0xC0000000,  # 192.0.0.0 onwards
        router: int = 0,
        fixed_src_port: int | None = None,
    ) -> None:
        super().__init__(anomaly_id)
        if flow_count <= 0 or source_count <= 0:
            raise SynthesisError("flow_count and source_count must be positive")
        if not 0 <= dst_port <= 0xFFFF:
            raise SynthesisError(f"bad dst_port {dst_port!r}")
        self.target = target
        self.dst_port = dst_port
        self.flow_count = flow_count
        self.source_count = source_count
        self.source_space_start = source_space_start
        self.router = router
        self.fixed_src_port = fixed_src_port

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        sources = [
            self.source_space_start + rng.randrange(1 << 24)
            for _ in range(self.source_count)
        ]
        flows = []
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            flow_start = start + offset
            src_port = (
                self.fixed_src_port
                if self.fixed_src_port is not None
                else rng.randint(1024, 65535)
            )
            packets = rng.randint(1, 3)
            flows.append(
                FlowRecord(
                    src_ip=rng.choice(sources),
                    dst_ip=self.target,
                    src_port=src_port,
                    dst_port=self.dst_port,
                    proto=Protocol.TCP,
                    packets=packets,
                    bytes=packets * 40,
                    start=flow_start,
                    end=flow_start + 0.001,
                    tcp_flags=int(TcpFlags.SYN),
                    router=self.router,
                )
            )
        items = {
            FlowFeature.DST_IP: self.target,
            FlowFeature.DST_PORT: self.dst_port,
            FlowFeature.PROTO: int(Protocol.TCP),
        }
        if self.fixed_src_port is not None:
            items[FlowFeature.SRC_PORT] = self.fixed_src_port
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[Signature(items, description="SYN flood flows")],
        )
        truth.tally(flows)
        return flows, truth


class UdpFlood(AnomalyInjector):
    """A point-to-point UDP packet flood.

    Few flow records (NetFlow aggregates the blast into a handful of
    long-lived flows, further cut by active-timeout expiry) but an
    enormous packet count. ``flow_count`` defaults deliberately below any
    sane flow-support threshold.
    """

    kind = AnomalyKind.UDP_FLOOD

    def __init__(
        self,
        anomaly_id: str,
        source: int,
        target: int,
        packets_total: int,
        flow_count: int = 12,
        src_port: int | None = None,
        dst_port: int | None = None,
        router: int = 0,
    ) -> None:
        super().__init__(anomaly_id)
        if flow_count <= 0:
            raise SynthesisError("flow_count must be positive")
        if packets_total < flow_count:
            raise SynthesisError(
                "packets_total must be at least flow_count"
            )
        self.source = source
        self.target = target
        self.packets_total = packets_total
        self.flow_count = flow_count
        self.src_port = src_port
        self.dst_port = dst_port
        self.router = router

    def inject(
        self, start: float, end: float, rng: random.Random
    ) -> tuple[list[FlowRecord], GroundTruth]:
        self._check_interval(start, end)
        duration = end - start
        base = self.packets_total // self.flow_count
        flows = []
        remaining = self.packets_total
        for index in range(self.flow_count):
            offset = duration * index / self.flow_count
            flow_start = start + offset
            if index == self.flow_count - 1:
                packets = remaining
            else:
                packets = max(1, int(base * rng.uniform(0.6, 1.4)))
                packets = min(packets, remaining - (self.flow_count - index - 1))
            remaining -= packets
            src_port = (
                self.src_port
                if self.src_port is not None
                else rng.randint(1024, 65535)
            )
            dst_port = (
                self.dst_port
                if self.dst_port is not None
                else rng.randint(1, 65535)
            )
            flows.append(
                FlowRecord(
                    src_ip=self.source,
                    dst_ip=self.target,
                    src_port=src_port,
                    dst_port=dst_port,
                    proto=Protocol.UDP,
                    packets=packets,
                    bytes=packets * rng.randint(64, 1200),
                    start=flow_start,
                    end=min(end, flow_start + duration / self.flow_count),
                    router=self.router,
                )
            )
        items = {
            FlowFeature.SRC_IP: self.source,
            FlowFeature.DST_IP: self.target,
            FlowFeature.PROTO: int(Protocol.UDP),
        }
        if self.src_port is not None:
            items[FlowFeature.SRC_PORT] = self.src_port
        if self.dst_port is not None:
            items[FlowFeature.DST_PORT] = self.dst_port
        truth = GroundTruth(
            anomaly_id=self.anomaly_id,
            kind=self.kind,
            start=start,
            end=end,
            signatures=[
                Signature(items, description="point-to-point UDP flood")
            ],
        )
        truth.tally(flows)
        return flows, truth
