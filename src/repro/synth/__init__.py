"""Synthetic labelled NetFlow traces: topology, background and anomalies.

Stands in for the paper's SWITCH/GEANT traces (see DESIGN.md §2): seeded
generators produce backbone-shaped background traffic over a GEANT-like
18-PoP topology, anomaly injectors add labelled attack flows, and the
scenario composer merges and optionally packet-samples the result.
"""

from repro.synth.anomalies import (
    AlphaFlow,
    AnomalyInjector,
    AnomalyKind,
    FlashCrowd,
    GroundTruth,
    NetworkScan,
    PortScan,
    ReflectorAttack,
    Signature,
    StealthyAnomaly,
    SynFlood,
    UdpFlood,
)
from repro.synth.background import (
    BackgroundConfig,
    BackgroundGenerator,
    ServiceMix,
)
from repro.synth.scenario import Injection, LabeledTrace, Scenario
from repro.synth.topology import GEANT_POP_NAMES, PointOfPresence, Topology

__all__ = [
    "AlphaFlow",
    "AnomalyInjector",
    "AnomalyKind",
    "FlashCrowd",
    "GroundTruth",
    "NetworkScan",
    "PortScan",
    "ReflectorAttack",
    "Signature",
    "StealthyAnomaly",
    "SynFlood",
    "UdpFlood",
    "BackgroundConfig",
    "BackgroundGenerator",
    "ServiceMix",
    "Injection",
    "LabeledTrace",
    "Scenario",
    "GEANT_POP_NAMES",
    "PointOfPresence",
    "Topology",
]
