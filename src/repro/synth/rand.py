"""Seeded random-distribution helpers for traffic synthesis.

Backbone traffic is famously heavy-tailed: a few hosts, ports and flows
carry most of the volume. The generators draw from Zipf-like rank
distributions (host/port popularity), bounded Pareto (flow sizes) and
lognormal (durations), all driven by an explicit :class:`random.Random`
instance so every trace is exactly reproducible from its seed.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from typing import Sequence, TypeVar

from repro.errors import SynthesisError

__all__ = [
    "ZipfSampler",
    "bounded_pareto_int",
    "lognormal_duration",
    "exponential_interarrival",
    "pick_weighted",
]

T = TypeVar("T")


class ZipfSampler:
    """Zipf(alpha) sampler over ranks ``0..n-1`` with a precomputed CDF.

    Rank ``r`` has probability proportional to ``1 / (r + 1) ** alpha``.
    Sampling is O(log n) via bisection on the cumulative weights.
    """

    def __init__(self, n: int, alpha: float = 1.0) -> None:
        if n <= 0:
            raise SynthesisError(f"population size must be positive: {n!r}")
        if alpha < 0:
            raise SynthesisError(f"alpha must be non-negative: {alpha!r}")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]

    def sample(self, rng: random.Random) -> int:
        """Draw a rank in ``0..n-1``."""
        point = rng.random() * self._total
        return min(bisect.bisect_left(self._cumulative, point), self.n - 1)

    def probability(self, rank: int) -> float:
        """Probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise SynthesisError(f"rank {rank} outside 0..{self.n - 1}")
        return (1.0 / (rank + 1) ** self.alpha) / self._total


def bounded_pareto_int(
    rng: random.Random, minimum: int, maximum: int, alpha: float = 1.2
) -> int:
    """Bounded Pareto integer draw in ``[minimum, maximum]``.

    Used for packets-per-flow and bytes-per-flow: most flows are tiny,
    a few are elephants.
    """
    if minimum <= 0 or maximum < minimum:
        raise SynthesisError(
            f"bad Pareto bounds [{minimum}, {maximum}]"
        )
    if minimum == maximum:
        return minimum
    if alpha <= 0:
        raise SynthesisError(f"alpha must be positive: {alpha!r}")
    low = float(minimum)
    high = float(maximum)
    u = rng.random()
    # Inverse CDF of the bounded Pareto distribution.
    ha = high**alpha
    la = low**alpha
    value = (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / alpha)
    return max(minimum, min(maximum, int(value)))


def lognormal_duration(
    rng: random.Random, median: float = 2.0, sigma: float = 1.2,
    maximum: float = 240.0,
) -> float:
    """Lognormal flow duration in seconds, capped at ``maximum``."""
    if median <= 0 or sigma <= 0 or maximum <= 0:
        raise SynthesisError("lognormal parameters must be positive")
    value = rng.lognormvariate(math.log(median), sigma)
    return min(value, maximum)


def exponential_interarrival(rng: random.Random, rate: float) -> float:
    """Exponential inter-arrival gap for a Poisson process of ``rate``/s."""
    if rate <= 0:
        raise SynthesisError(f"rate must be positive: {rate!r}")
    return rng.expovariate(rate)


def pick_weighted(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """Draw one item with the given (not necessarily normalised) weights."""
    if len(items) != len(weights) or not items:
        raise SynthesisError("items and weights must be equal-length, non-empty")
    return rng.choices(items, weights=weights, k=1)[0]
