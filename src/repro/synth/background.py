"""Background (non-anomalous) backbone traffic generation.

The extraction technique's core assumption is that anomalous flows share
feature values while *background* traffic spreads its support across many
values. The background generator therefore reproduces the statistical
shape that matters for mining and detection:

* heavy-tailed host and PoP popularity (a few busy servers);
* a realistic, Zipf-weighted service-port mix (80, 443, 53, ...);
* heavy-tailed flow sizes (bounded Pareto packets-per-flow);
* Poisson flow arrivals with lognormal durations;
* unidirectional records, with reverse (server-to-client) flows emitted
  for a fraction of sessions, as a NetFlow collector would see.

Everything is driven by an explicit seed for exact reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import SynthesisError
from repro.flows.record import FlowRecord, Protocol, TcpFlags
from repro.synth.rand import (
    ZipfSampler,
    bounded_pareto_int,
    lognormal_duration,
    pick_weighted,
)
from repro.synth.topology import Topology

__all__ = ["ServiceMix", "BackgroundConfig", "BackgroundGenerator"]

#: (port, protocol, weight) rows of the default service mix. Weights are
#: relative; the list is ordered by typical backbone popularity.
_DEFAULT_SERVICES: tuple[tuple[int, int, float], ...] = (
    (80, Protocol.TCP, 32.0),
    (443, Protocol.TCP, 24.0),
    (53, Protocol.UDP, 12.0),
    (25, Protocol.TCP, 5.0),
    (22, Protocol.TCP, 4.0),
    (123, Protocol.UDP, 3.0),
    (110, Protocol.TCP, 2.0),
    (143, Protocol.TCP, 2.0),
    (21, Protocol.TCP, 2.0),
    (445, Protocol.TCP, 2.0),
    (993, Protocol.TCP, 1.5),
    (8080, Protocol.TCP, 1.5),
    (3389, Protocol.TCP, 1.0),
    (1935, Protocol.TCP, 1.0),
    (5060, Protocol.UDP, 1.0),
    (161, Protocol.UDP, 0.5),
)

_EPHEMERAL_LOW = 1024
_EPHEMERAL_HIGH = 65535


class ServiceMix:
    """Weighted set of (port, protocol) services for background sessions."""

    def __init__(
        self,
        services: tuple[tuple[int, int, float], ...] = _DEFAULT_SERVICES,
    ) -> None:
        if not services:
            raise SynthesisError("service mix cannot be empty")
        self._ports = [(port, proto) for port, proto, _ in services]
        self._weights = [weight for _, _, weight in services]
        if min(self._weights) <= 0:
            raise SynthesisError("service weights must be positive")

    def sample(self, rng: random.Random) -> tuple[int, int]:
        """Draw a ``(service_port, protocol)`` pair."""
        return pick_weighted(rng, self._ports, self._weights)

    @property
    def ports(self) -> list[int]:
        """All service ports in the mix."""
        return [port for port, _ in self._ports]


@dataclass(frozen=True)
class BackgroundConfig:
    """Tunables of the background generator.

    ``flows_per_second`` is the aggregate arrival rate across the whole
    backbone; the GEANT-scale default in the benchmarks is larger than
    the unit-test default used here.
    """

    flows_per_second: float = 40.0
    internal_fraction: float = 0.55  # sessions between two PoPs
    inbound_fraction: float = 0.25  # external client -> internal server
    reverse_flow_probability: float = 0.45
    icmp_fraction: float = 0.01
    max_packets_per_flow: int = 8_000
    pareto_alpha: float = 1.3
    mean_packet_size: int = 640
    service_mix: ServiceMix = field(default_factory=ServiceMix)

    def __post_init__(self) -> None:
        if self.flows_per_second <= 0:
            raise SynthesisError("flows_per_second must be positive")
        fractions = (
            self.internal_fraction,
            self.inbound_fraction,
            self.reverse_flow_probability,
            self.icmp_fraction,
        )
        if any(not 0.0 <= value <= 1.0 for value in fractions):
            raise SynthesisError("fractions must lie in [0, 1]")
        if self.internal_fraction + self.inbound_fraction > 1.0:
            raise SynthesisError(
                "internal_fraction + inbound_fraction must not exceed 1"
            )
        if self.max_packets_per_flow < 1:
            raise SynthesisError("max_packets_per_flow must be >= 1")
        if not 40 <= self.mean_packet_size <= 1500:
            raise SynthesisError("mean_packet_size must be in [40, 1500]")


class BackgroundGenerator:
    """Generates background flow records over a time interval."""

    def __init__(
        self,
        topology: Topology,
        config: BackgroundConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or BackgroundConfig()
        self._size_jitter = ZipfSampler(8, alpha=0.8)

    # -- endpoint selection -------------------------------------------------

    def _pick_endpoints(self, rng: random.Random) -> tuple[int, int, int]:
        """Return (client_ip, server_ip, ingress_router)."""
        topo = self.topology
        cfg = self.config
        roll = rng.random()
        if roll < cfg.internal_fraction:
            client_pop = topo.random_pop(rng)
            server_pop = topo.random_pop(rng)
            client = topo.random_internal_host(rng, client_pop)
            server = topo.random_internal_host(rng, server_pop)
            router = client_pop.index
        elif roll < cfg.internal_fraction + cfg.inbound_fraction:
            client = topo.random_external_host(rng)
            server_pop = topo.random_pop(rng)
            server = topo.random_internal_host(rng, server_pop)
            router = server_pop.index
        else:
            client_pop = topo.random_pop(rng)
            client = topo.random_internal_host(rng, client_pop)
            server = topo.random_external_host(rng)
            router = client_pop.index
        return client, server, router

    # -- flow construction ---------------------------------------------------

    def _session_flows(
        self, rng: random.Random, start: float, horizon: float
    ) -> Iterator[FlowRecord]:
        cfg = self.config
        client, server, router = self._pick_endpoints(rng)

        if rng.random() < cfg.icmp_fraction:
            packets = rng.randint(1, 10)
            yield FlowRecord(
                src_ip=client,
                dst_ip=server,
                src_port=0,
                dst_port=0,
                proto=Protocol.ICMP,
                packets=packets,
                bytes=packets * 64,
                start=start,
                end=start + rng.random() * 2.0,
                router=router,
            )
            return

        service_port, proto = cfg.service_mix.sample(rng)
        client_port = rng.randint(_EPHEMERAL_LOW, _EPHEMERAL_HIGH)
        packets = bounded_pareto_int(
            rng, 1, cfg.max_packets_per_flow, alpha=cfg.pareto_alpha
        )
        size_rank = self._size_jitter.sample(rng)
        packet_size = max(
            40, min(1500, int(cfg.mean_packet_size / (size_rank + 1)) + 40)
        )
        duration = lognormal_duration(rng)
        flags = 0
        if proto == Protocol.TCP:
            flags = int(TcpFlags.SYN | TcpFlags.ACK)
            if packets > 3:
                flags |= int(TcpFlags.PSH | TcpFlags.FIN)

        yield FlowRecord(
            src_ip=client,
            dst_ip=server,
            src_port=client_port,
            dst_port=service_port,
            proto=int(proto),
            packets=packets,
            bytes=packets * packet_size,
            start=start,
            end=start + duration,
            tcp_flags=flags,
            router=router,
        )

        if rng.random() < cfg.reverse_flow_probability:
            # Server-to-client half of the session: usually bigger payload.
            reverse_packets = max(1, int(packets * rng.uniform(0.8, 3.0)))
            # Keep the reverse flow's start inside the generation horizon
            # so traces never leak flows into a bin past the epoch.
            reverse_start = min(start + rng.random() * 0.2, horizon - 1e-6)
            yield FlowRecord(
                src_ip=server,
                dst_ip=client,
                src_port=service_port,
                dst_port=client_port,
                proto=int(proto),
                packets=reverse_packets,
                bytes=reverse_packets * min(1500, packet_size * 2),
                start=reverse_start,
                end=reverse_start + duration,
                tcp_flags=flags,
                router=router,
            )

    def generate(
        self, start: float, end: float, seed: int = 0
    ) -> Iterator[FlowRecord]:
        """Yield background flows with start times in ``[start, end)``.

        Arrivals follow a Poisson process of ``flows_per_second``; the
        same ``(start, end, seed)`` triple always produces the same
        flows.
        """
        if end <= start:
            raise SynthesisError(f"empty interval [{start}, {end})")
        rng = random.Random(seed)
        clock = start
        # Session arrivals; each session may emit one or two flow records.
        while True:
            clock += rng.expovariate(self.config.flows_per_second)
            if clock >= end:
                return
            yield from self._session_flows(rng, clock, end)
