"""Flow backend facade — the "NfDump" box of Figure 1.

The GUI "integrates with a back-end that stores flow records and that is
based on the popular open-source tool NfDump". :class:`FlowBackend`
wraps a :class:`~repro.flows.store.FlowStore` with the exact operations
the extraction system and the console need:

* pull the flows of an alarm interval (plus padding bins);
* pull a pre-alarm baseline window for the popular-value filter;
* drill down into the raw flows matching an extracted itemset;
* nfdump-style ad-hoc filter queries and top-N statistics.

The backend is agnostic about where the rows live: ``store`` may be
the in-memory :class:`~repro.flows.store.FlowStore` *or* an on-disk
:class:`~repro.archive.reader.ArchiveReader` — both expose the same
query surface with byte-identical results, so triage runs unchanged
against a live ring or a persistent archive (the restart-recovery
path: :meth:`FlowBackend.from_archive`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.detect.base import Alarm
from repro.errors import StoreError
from repro.flows.filter import FilterNode
from repro.flows.record import FlowFeature, FlowRecord
from repro.flows.store import FlowStore
from repro.flows.table import FlowTable
from repro.flows.trace import FlowTrace
from repro.mining.items import Itemset

if TYPE_CHECKING:
    from repro.archive.reader import ArchiveReader

__all__ = ["BackendWindows", "FlowBackend"]


@dataclass(frozen=True, slots=True)
class BackendWindows:
    """Time windows the backend derives from an alarm."""

    interval: tuple[float, float]
    baseline: tuple[float, float]


class FlowBackend:
    """Query facade over the flow archive for one deployment."""

    def __init__(
        self,
        store: "FlowStore | ArchiveReader",
        baseline_bins: int = 3,
        pad_bins: int = 0,
    ) -> None:
        if baseline_bins < 0 or pad_bins < 0:
            raise StoreError("baseline_bins and pad_bins must be >= 0")
        self.store = store
        self.baseline_bins = baseline_bins
        self.pad_bins = pad_bins

    @classmethod
    def from_trace(cls, trace: FlowTrace, **kwargs: int) -> "FlowBackend":
        """Build a backend over an in-memory trace."""
        return cls(FlowStore.from_trace(trace), **kwargs)

    @classmethod
    def from_archive(
        cls, root_or_reader, **kwargs: int
    ) -> "FlowBackend":
        """Build a backend over a persistent on-disk archive.

        Accepts an archive directory path or an existing
        :class:`~repro.archive.reader.ArchiveReader`. Alarm, baseline
        and ad-hoc windows are then answered by zone-map-pruned mmap
        scans — the durable triage path that survives a process
        restart.
        """
        from repro.archive.reader import ArchiveReader

        reader = (
            root_or_reader
            if isinstance(root_or_reader, ArchiveReader)
            else ArchiveReader(root_or_reader)
        )
        return cls(reader, **kwargs)

    # -- alarm-driven windows ------------------------------------------------

    def windows_for(self, alarm: Alarm) -> BackendWindows:
        """Interval (padded) and baseline windows for one alarm."""
        width = self.store.slice_seconds
        start = alarm.start - self.pad_bins * width
        end = alarm.end + self.pad_bins * width
        baseline_start = start - self.baseline_bins * width
        return BackendWindows(
            interval=(start, end),
            baseline=(baseline_start, start),
        )

    def alarm_flows(self, alarm: Alarm) -> list[FlowRecord]:
        """All flows of the (padded) alarm interval."""
        start, end = self.windows_for(alarm).interval
        return self.store.query(start, end)

    def alarm_table(self, alarm: Alarm) -> FlowTable:
        """Columnar view of the (padded) alarm interval."""
        start, end = self.windows_for(alarm).interval
        return self.store.query_table(start, end)

    def baseline_flows(self, alarm: Alarm) -> list[FlowRecord]:
        """Flows of the pre-alarm baseline window (may be empty)."""
        start, end = self.windows_for(alarm).baseline
        if end <= start:
            return []
        return self.store.query(start, end)

    def baseline_table(self, alarm: Alarm) -> FlowTable:
        """Columnar view of the pre-alarm baseline window."""
        start, end = self.windows_for(alarm).baseline
        if end <= start:
            return FlowTable.empty()
        return self.store.query_table(start, end)

    # -- drill-down ---------------------------------------------------------

    def itemset_flows(
        self,
        itemset: Itemset,
        start: float,
        end: float,
        limit: int | None = None,
    ) -> list[FlowRecord]:
        """Raw flows matching an extracted itemset in a window.

        This is the GUI's "investigate the flows of any returned
        itemset" action. Flows come back heaviest (packets) first. The
        intersection runs as a mask over the window's table; only the
        reported flows are materialized.
        """
        if limit is not None and limit < 1:
            raise StoreError(f"limit must be >= 1: {limit!r}")
        window = self.store.query_table(start, end)
        matched = window.select(itemset.mask(window))
        if len(matched) > 1:
            order = np.lexsort((matched.start, -matched.packets))
            matched = matched.select(order)
        if limit is not None:
            matched = matched.select(slice(0, limit))
        return matched.to_records()

    # -- ad-hoc queries ----------------------------------------------------------

    def query(
        self,
        start: float,
        end: float,
        flow_filter: str | FilterNode | None = None,
    ) -> list[FlowRecord]:
        """nfdump-style filtered query (delegates to the store)."""
        return self.store.query(start, end, flow_filter)

    def query_table(
        self,
        start: float,
        end: float,
        flow_filter: str | FilterNode | None = None,
    ) -> FlowTable:
        """Columnar nfdump-style query (delegates to the store)."""
        return self.store.query_table(start, end, flow_filter)

    def top_feature_values(
        self,
        start: float,
        end: float,
        feature: FlowFeature,
        n: int = 10,
        by_packets: bool = False,
    ) -> list[tuple[int, int]]:
        """Top-N values of a flow feature in a window (vectorized)."""
        return self.store.top_feature_values(
            start, end, feature, n=n, by_packets=by_packets
        )
