"""The operator console — the "GUI" of Figure 1, in text form.

"The operator, through a GUI, can compute the frequent itemsets
associated with an alarm, investigate the flows of any returned itemset,
and tune the extraction parameters if needed." This module renders that
workflow as plain-text reports: an alarm queue view, Table-1-style
itemset tables, raw-flow drill-downs and validation summaries. All
functions return strings (no printing), so the console is equally usable
interactively, in examples, and in tests.
"""

from __future__ import annotations

from repro.detect.base import Alarm
from repro.extraction.extractor import ExtractionReport
from repro.extraction.summarize import format_count, table_rows
from repro.extraction.validate import ValidationVerdict
from repro.flows.record import FlowRecord, Protocol, TcpFlags
from repro.flows.addresses import anonymize_ip, int_to_ip
from repro.system.alarmdb import AlarmDatabase, AlarmStatus

__all__ = [
    "render_table",
    "alarm_queue_view",
    "itemset_table_view",
    "flow_drilldown_view",
    "verdict_view",
    "session_view",
]


def render_table(rows: list[tuple[str, ...]], indent: str = "") -> str:
    """Align a list of string tuples into a fixed-width text table."""
    if not rows:
        return ""
    widths = [0] * max(len(row) for row in rows)
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    for index, row in enumerate(rows):
        cells = [cell.rjust(widths[i]) for i, cell in enumerate(row)]
        lines.append(indent + "  ".join(cells).rstrip())
        if index == 0:
            lines.append(
                indent + "  ".join("-" * w for w in widths)
            )
    return "\n".join(lines)


def _render_ip(address: int, anonymize: bool) -> str:
    return anonymize_ip(address) if anonymize else int_to_ip(address)


def alarm_queue_view(db: AlarmDatabase, anonymize: bool = False) -> str:
    """The alarm queue: one line per alarm, newest last."""
    rows: list[tuple[str, ...]] = [
        ("alarm", "detector", "window", "score", "label", "status", "meta")
    ]
    for status in AlarmStatus.ALL:
        for alarm in db.list_alarms(status=status):
            meta = ", ".join(
                item.render(anonymize) for item in alarm.metadata[:3]
            )
            if len(alarm.metadata) > 3:
                meta += f" (+{len(alarm.metadata) - 3})"
            rows.append(
                (
                    alarm.alarm_id,
                    alarm.detector,
                    f"[{alarm.start:.0f},{alarm.end:.0f})",
                    f"{alarm.score:.2f}",
                    alarm.label or "-",
                    status,
                    meta or "-",
                )
            )
    return render_table(rows)


def itemset_table_view(
    report: ExtractionReport, anonymize: bool = False
) -> str:
    """Table-1-style view of a report, with class and novelty columns."""
    base_rows = table_rows(report, anonymize=anonymize)
    rows = [base_rows[0] + ("class", "origin")]
    for extracted, row in zip(report.itemsets, base_rows[1:]):
        rows.append(
            row
            + (
                extracted.classification.kind.value,
                "detector" if extracted.confirms_detector else "extracted",
            )
        )
    header = (
        f"Itemsets for alarm {report.alarm.alarm_id} "
        f"({len(report.candidates.flows)} candidate flows, "
        f"{report.outcome.iterations} mining iteration(s))"
    )
    if len(rows) == 1:
        return f"{header}\n  (no meaningful itemsets)"
    return f"{header}\n{render_table(rows, indent='  ')}"


def flow_drilldown_view(
    flows: list[FlowRecord],
    limit: int = 20,
    anonymize: bool = False,
) -> str:
    """Raw-flow view of a drill-down, heaviest flows first."""
    rows: list[tuple[str, ...]] = [
        ("srcIP", "srcPort", "dstIP", "dstPort", "proto", "pkts", "bytes",
         "flags")
    ]
    ordered = sorted(flows, key=lambda f: (-f.packets, f.start))
    for flow in ordered[:limit]:
        try:
            proto = Protocol(flow.proto).name
        except ValueError:
            proto = str(flow.proto)
        rows.append(
            (
                _render_ip(flow.src_ip, anonymize),
                str(flow.src_port),
                _render_ip(flow.dst_ip, anonymize),
                str(flow.dst_port),
                proto,
                format_count(flow.packets),
                format_count(flow.bytes),
                TcpFlags(flow.tcp_flags).compact(),
            )
        )
    text = render_table(rows)
    hidden = len(flows) - min(limit, len(flows))
    if hidden > 0:
        text += f"\n  ... {hidden} more flows"
    return text


def verdict_view(verdict: ValidationVerdict, anonymize: bool = False) -> str:
    """Validation verdict plus per-itemset evidence lines."""
    lines = [verdict.summary()]
    for evidence in verdict.evidence:
        extracted = evidence.extracted
        lines.append(
            f"  {extracted.describe(anonymize)}  "
            f"evidence: {format_count(evidence.total_flows)} flows, "
            f"{format_count(evidence.total_packets)} packets, "
            f"{format_count(evidence.total_bytes)} bytes"
        )
        if extracted.classification.rationale:
            lines.append(f"    why: {extracted.classification.rationale}")
    return "\n".join(lines)


def session_view(
    alarm: Alarm,
    report: ExtractionReport,
    verdict: ValidationVerdict,
    anonymize: bool = False,
) -> str:
    """A full operator session for one alarm, start to finish."""
    parts = [
        "=" * 72,
        alarm.describe(anonymize),
        "-" * 72,
        itemset_table_view(report, anonymize=anonymize),
        "-" * 72,
        verdict_view(verdict, anonymize=anonymize),
        "=" * 72,
    ]
    return "\n".join(parts)
