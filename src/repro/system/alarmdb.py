"""The alarm database.

Figure 1's integration point: "our system reads from a database
information about an alarm (e.g., the time interval and the affected
traffic features) and thus can be integrated with any anomaly detection
system that provides these data."

:class:`AlarmDatabase` is a small sqlite3-backed store (file or
in-memory) holding alarms and their meta-data hints, plus the operator's
triage state — open, extracted, validated, dismissed — so the console
can drive the same workflow the GEANT NOC used.
"""

from __future__ import annotations

import sqlite3
from contextlib import closing
from pathlib import Path

from repro.detect.base import Alarm, MetadataItem
from repro.errors import AlarmDatabaseError
from repro.flows.record import FlowFeature

__all__ = ["AlarmStatus", "AlarmDatabase"]


class AlarmStatus:
    """Triage states an alarm moves through."""

    OPEN = "open"
    EXTRACTED = "extracted"
    VALIDATED = "validated"
    DISMISSED = "dismissed"

    ALL = (OPEN, EXTRACTED, VALIDATED, DISMISSED)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS alarms (
    alarm_id   TEXT PRIMARY KEY,
    detector   TEXT NOT NULL,
    start      REAL NOT NULL,
    end        REAL NOT NULL,
    score      REAL NOT NULL,
    label      TEXT NOT NULL DEFAULT '',
    router     INTEGER,
    status     TEXT NOT NULL DEFAULT 'open',
    verdict    TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS alarm_metadata (
    alarm_id   TEXT NOT NULL REFERENCES alarms(alarm_id) ON DELETE CASCADE,
    feature    TEXT NOT NULL,
    value      INTEGER NOT NULL,
    weight     REAL NOT NULL DEFAULT 1.0
);
CREATE INDEX IF NOT EXISTS idx_metadata_alarm
    ON alarm_metadata(alarm_id);
CREATE INDEX IF NOT EXISTS idx_alarms_interval
    ON alarms(start, end);
"""


class AlarmDatabase:
    """sqlite-backed storage of alarms and their triage state."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._conn = sqlite3.connect(str(path))
        self._conn.execute("PRAGMA foreign_keys = ON")
        with self._conn:
            self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "AlarmDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes ------------------------------------------------------------

    def insert(
        self, alarm: Alarm, dedup_window: float | None = None
    ) -> str:
        """Insert one alarm with its meta-data hints.

        With ``dedup_window`` (seconds), a re-fire of the same anomaly —
        an alarm from the same detector with the same label and router
        whose interval lies within ``dedup_window`` of a stored one — is
        *merged* into the stored alarm instead of inserted: the stored
        interval is widened to cover both, the score keeps the maximum,
        and the meta-data hints are united. This is the suppression a
        streaming deployment needs so a persistent anomaly re-firing
        window after window does not flood the database. Dismissed
        alarms never absorb re-fires: a fresh alarm is stored (and will
        be triaged) instead, so new evidence on a closed false-positive
        case cannot be silently swallowed.

        Returns the id the alarm is stored under (the existing alarm's
        id when merged).
        """
        with self._conn:
            return self._insert_in_tx(alarm, dedup_window)

    def _insert_in_tx(
        self, alarm: Alarm, dedup_window: float | None
    ) -> str:
        """Insert/merge one alarm inside the caller's transaction.

        All statement batching lives here so :meth:`insert` (one
        transaction per alarm) and :meth:`insert_many` (one
        transaction per *batch*) share the exact same semantics.
        """
        if dedup_window is not None:
            if dedup_window < 0:
                raise AlarmDatabaseError(
                    f"dedup_window must be >= 0: {dedup_window!r}"
                )
            merged = self._merge_duplicate(alarm, dedup_window)
            if merged is not None:
                return merged
        try:
            self._conn.execute(
                "INSERT INTO alarms (alarm_id, detector, start, end, "
                "score, label, router) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    alarm.alarm_id,
                    alarm.detector,
                    alarm.start,
                    alarm.end,
                    alarm.score,
                    alarm.label,
                    alarm.router,
                ),
            )
            self._conn.executemany(
                "INSERT INTO alarm_metadata (alarm_id, feature, value, "
                "weight) VALUES (?, ?, ?, ?)",
                [
                    (alarm.alarm_id, m.feature.value, m.value, m.weight)
                    for m in alarm.metadata
                ],
            )
        except sqlite3.IntegrityError as exc:
            raise AlarmDatabaseError(
                f"alarm {alarm.alarm_id!r} already stored"
            ) from exc
        return alarm.alarm_id

    def _merge_duplicate(
        self, alarm: Alarm, dedup_window: float
    ) -> str | None:
        """Merge ``alarm`` into a stored duplicate; ``None`` if none.

        Runs inside the caller's transaction (no commit here).
        """
        row = self._conn.execute(
            "SELECT alarm_id, start, end, score FROM alarms "
            "WHERE detector = ? AND label = ? "
            "AND IFNULL(router, -1) = IFNULL(?, -1) "
            "AND status != 'dismissed' "
            "AND start <= ? AND end >= ? "
            "ORDER BY start DESC, alarm_id LIMIT 1",
            (
                alarm.detector,
                alarm.label,
                alarm.router,
                alarm.end + dedup_window,
                alarm.start - dedup_window,
            ),
        ).fetchone()
        if row is None:
            return None
        existing_id, start, end, score = row
        self._conn.execute(
            "UPDATE alarms SET start = ?, end = ?, score = ? "
            "WHERE alarm_id = ?",
            (
                min(start, alarm.start),
                max(end, alarm.end),
                max(score, alarm.score),
                existing_id,
            ),
        )
        for item in alarm.metadata:
            updated = self._conn.execute(
                "UPDATE alarm_metadata SET weight = MAX(weight, ?) "
                "WHERE alarm_id = ? AND feature = ? AND value = ?",
                (item.weight, existing_id, item.feature.value,
                 item.value),
            ).rowcount
            if updated == 0:
                self._conn.execute(
                    "INSERT INTO alarm_metadata (alarm_id, feature, "
                    "value, weight) VALUES (?, ?, ?, ?)",
                    (existing_id, item.feature.value, item.value,
                     item.weight),
                )
        return existing_id

    def insert_many(
        self, alarms: list[Alarm], dedup_window: float | None = None
    ) -> int:
        """Insert several alarms; returns how many were stored as *new*.

        Alarms merged into existing entries (see :meth:`insert` with
        ``dedup_window``) do not count. The whole batch commits as
        **one transaction** — one fsync instead of one per alarm,
        which is what keeps stream-engine window flushes with many
        alarms cheap on a file-backed database — and is therefore
        all-or-nothing: a duplicate id anywhere in the batch rolls the
        entire batch back before the error propagates.
        """
        stored = 0
        with self._conn:
            for alarm in alarms:
                if self._insert_in_tx(alarm, dedup_window) \
                        == alarm.alarm_id:
                    stored += 1
        return stored

    def set_status(
        self, alarm_id: str, status: str, verdict: str = ""
    ) -> None:
        """Advance an alarm's triage state (optionally with a verdict)."""
        if status not in AlarmStatus.ALL:
            raise AlarmDatabaseError(
                f"unknown status {status!r}; expected one of "
                f"{AlarmStatus.ALL}"
            )
        with self._conn:
            updated = self._conn.execute(
                "UPDATE alarms SET status = ?, verdict = ? "
                "WHERE alarm_id = ?",
                (status, verdict, alarm_id),
            ).rowcount
        if updated == 0:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")

    def delete(self, alarm_id: str) -> None:
        """Remove an alarm and its meta-data."""
        with self._conn:
            deleted = self._conn.execute(
                "DELETE FROM alarms WHERE alarm_id = ?", (alarm_id,)
            ).rowcount
        if deleted == 0:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")

    # -- reads ---------------------------------------------------------------

    def _row_to_alarm(self, row: sqlite3.Row | tuple) -> Alarm:
        (alarm_id, detector, start, end, score, label, router) = row
        metadata = []
        with closing(
            self._conn.execute(
                "SELECT feature, value, weight FROM alarm_metadata "
                "WHERE alarm_id = ? ORDER BY weight DESC",
                (alarm_id,),
            )
        ) as cursor:
            for feature_text, value, weight in cursor:
                metadata.append(
                    MetadataItem(
                        feature=FlowFeature(feature_text),
                        value=value,
                        weight=weight,
                    )
                )
        return Alarm(
            alarm_id=alarm_id,
            detector=detector,
            start=start,
            end=end,
            score=score,
            label=label,
            metadata=metadata,
            router=router,
        )

    def get(self, alarm_id: str) -> Alarm:
        """Fetch one alarm by id."""
        row = self._conn.execute(
            "SELECT alarm_id, detector, start, end, score, label, router "
            "FROM alarms WHERE alarm_id = ?",
            (alarm_id,),
        ).fetchone()
        if row is None:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
        return self._row_to_alarm(row)

    def status_of(self, alarm_id: str) -> tuple[str, str]:
        """``(status, verdict)`` of one alarm."""
        row = self._conn.execute(
            "SELECT status, verdict FROM alarms WHERE alarm_id = ?",
            (alarm_id,),
        ).fetchone()
        if row is None:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
        return (row[0], row[1])

    def list_alarms(
        self,
        status: str | None = None,
        start: float | None = None,
        end: float | None = None,
    ) -> list[Alarm]:
        """Alarms (optionally by status and/or overlapping a window)."""
        query = (
            "SELECT alarm_id, detector, start, end, score, label, router "
            "FROM alarms"
        )
        clauses = []
        params: list[object] = []
        if status is not None:
            if status not in AlarmStatus.ALL:
                raise AlarmDatabaseError(f"unknown status {status!r}")
            clauses.append("status = ?")
            params.append(status)
        if start is not None:
            clauses.append("end > ?")
            params.append(start)
        if end is not None:
            clauses.append("start < ?")
            params.append(end)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY start, alarm_id"
        rows = self._conn.execute(query, params).fetchall()
        return [self._row_to_alarm(row) for row in rows]

    def count(self, status: str | None = None) -> int:
        """Number of alarms (optionally by status)."""
        if status is None:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM alarms"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM alarms WHERE status = ?", (status,)
            ).fetchone()
        return int(row[0])
