"""The alarm database and its triage lifecycle.

Figure 1's integration point: "our system reads from a database
information about an alarm (e.g., the time interval and the affected
traffic features) and thus can be integrated with any anomaly detection
system that provides these data."

:class:`AlarmDatabase` is a small sqlite3-backed store (file or
in-memory) holding alarms and their meta-data hints, plus the operator's
triage state, so the console can drive the same workflow the GEANT NOC
used. Since the operational plane landed it is a *lifecycle*, not just
a status column:

* the automated triage machine moves alarms ``open → extracted →
  validated``/``dismissed`` (:meth:`set_status`, as before);
* operators move them ``open → acked → assigned → escalated →
  resolved``/``dismissed`` through :meth:`transition`, which validates
  the move against :data:`LEGAL_TRANSITIONS`;
* every status change — automated, operator, re-fire dedup merge, or
  :meth:`auto_close` decay — appends one row to the append-only
  ``alarm_audit`` table **in the same transaction** as the change, so
  the trail can never disagree with the state.

The database is safe to share between the stream engine and the
console's HTTP handler threads: one connection, one process-wide lock.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from contextlib import closing
from dataclasses import dataclass
from pathlib import Path

from repro.detect.base import Alarm, MetadataItem
from repro.errors import AlarmDatabaseError, AlarmTransitionError
from repro.flows.record import FlowFeature, format_feature_value
from repro.obs import events as obs_events

__all__ = [
    "AlarmStatus",
    "AlarmDatabase",
    "AuditEntry",
    "LEGAL_TRANSITIONS",
    "LIFECYCLE_ACTIONS",
]


class AlarmStatus:
    """Triage states an alarm moves through."""

    OPEN = "open"
    ACKED = "acked"
    ASSIGNED = "assigned"
    ESCALATED = "escalated"
    EXTRACTED = "extracted"
    VALIDATED = "validated"
    RESOLVED = "resolved"
    DISMISSED = "dismissed"

    ALL = (OPEN, ACKED, ASSIGNED, ESCALATED, EXTRACTED, VALIDATED,
           RESOLVED, DISMISSED)
    #: Terminal states: nothing transitions out of them.
    CLOSED = (RESOLVED, DISMISSED)


#: from-status -> statuses an alarm may legally move to. ``extracted``
#: and ``validated`` belong to the automated triage machine; the rest
#: is the operator lifecycle. ``assigned -> assigned`` is a re-assign.
LEGAL_TRANSITIONS: dict[str, tuple[str, ...]] = {
    AlarmStatus.OPEN: (
        AlarmStatus.ACKED, AlarmStatus.ASSIGNED, AlarmStatus.ESCALATED,
        AlarmStatus.EXTRACTED, AlarmStatus.VALIDATED,
        AlarmStatus.RESOLVED, AlarmStatus.DISMISSED,
    ),
    AlarmStatus.ACKED: (
        AlarmStatus.ASSIGNED, AlarmStatus.ESCALATED,
        AlarmStatus.RESOLVED, AlarmStatus.DISMISSED,
    ),
    AlarmStatus.ASSIGNED: (
        AlarmStatus.ASSIGNED, AlarmStatus.ESCALATED,
        AlarmStatus.RESOLVED, AlarmStatus.DISMISSED,
    ),
    AlarmStatus.ESCALATED: (
        AlarmStatus.ASSIGNED, AlarmStatus.RESOLVED,
        AlarmStatus.DISMISSED,
    ),
    AlarmStatus.EXTRACTED: (
        AlarmStatus.VALIDATED, AlarmStatus.RESOLVED,
        AlarmStatus.DISMISSED,
    ),
    AlarmStatus.VALIDATED: (
        AlarmStatus.ACKED, AlarmStatus.ASSIGNED, AlarmStatus.ESCALATED,
        AlarmStatus.RESOLVED, AlarmStatus.DISMISSED,
    ),
    AlarmStatus.RESOLVED: (),
    AlarmStatus.DISMISSED: (),
}

#: Operator action name -> target status (the console's POST verbs and
#: the ``repro alarms`` subcommands).
LIFECYCLE_ACTIONS: dict[str, str] = {
    "ack": AlarmStatus.ACKED,
    "assign": AlarmStatus.ASSIGNED,
    "escalate": AlarmStatus.ESCALATED,
    "resolve": AlarmStatus.RESOLVED,
    "dismiss": AlarmStatus.DISMISSED,
}


_SCHEMA = """
CREATE TABLE IF NOT EXISTS alarms (
    alarm_id   TEXT PRIMARY KEY,
    detector   TEXT NOT NULL,
    start      REAL NOT NULL,
    end        REAL NOT NULL,
    score      REAL NOT NULL,
    label      TEXT NOT NULL DEFAULT '',
    router     INTEGER,
    status     TEXT NOT NULL DEFAULT 'open',
    verdict    TEXT NOT NULL DEFAULT '',
    assignee   TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS alarm_metadata (
    alarm_id   TEXT NOT NULL REFERENCES alarms(alarm_id) ON DELETE CASCADE,
    feature    TEXT NOT NULL,
    value      INTEGER NOT NULL,
    weight     REAL NOT NULL DEFAULT 1.0
);
CREATE TABLE IF NOT EXISTS alarm_audit (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    alarm_id    TEXT NOT NULL,
    ts          REAL NOT NULL,
    actor       TEXT NOT NULL DEFAULT '',
    action      TEXT NOT NULL,
    from_status TEXT NOT NULL DEFAULT '',
    to_status   TEXT NOT NULL DEFAULT '',
    note        TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_metadata_alarm
    ON alarm_metadata(alarm_id);
CREATE INDEX IF NOT EXISTS idx_alarms_interval
    ON alarms(start, end);
CREATE INDEX IF NOT EXISTS idx_alarms_status
    ON alarms(status);
CREATE INDEX IF NOT EXISTS idx_audit_alarm
    ON alarm_audit(alarm_id);
"""


@dataclass(frozen=True, slots=True)
class AuditEntry:
    """One append-only audit row: who moved what, when, from→to."""

    seq: int
    alarm_id: str
    ts: float
    actor: str
    action: str
    from_status: str
    to_status: str
    note: str

    def as_dict(self) -> dict:
        """JSON-ready form (the console's wire format)."""
        return {
            "seq": self.seq,
            "alarm_id": self.alarm_id,
            "ts": self.ts,
            "actor": self.actor,
            "action": self.action,
            "from_status": self.from_status,
            "to_status": self.to_status,
            "note": self.note,
        }


class AlarmDatabase:
    """sqlite-backed storage of alarms, their lifecycle and audit trail."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        # check_same_thread=False + the process-wide lock below make
        # one database shareable between the stream engine and the
        # console's HTTP handler threads (an in-memory DB *must* share
        # the connection — a second connect() opens an empty one).
        self._conn = sqlite3.connect(str(path), check_same_thread=False)
        self._lock = threading.RLock()
        self._conn.execute("PRAGMA foreign_keys = ON")
        with self._conn:
            self._conn.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Bring a pre-lifecycle database file up to this schema."""
        with self._lock, self._conn:
            columns = {
                row[1] for row in self._conn.execute(
                    "PRAGMA table_info(alarms)"
                )
            }
            if "assignee" not in columns:
                self._conn.execute(
                    "ALTER TABLE alarms ADD COLUMN assignee TEXT "
                    "NOT NULL DEFAULT ''"
                )

    def close(self) -> None:
        """Close the underlying connection."""
        self._conn.close()

    def __enter__(self) -> "AlarmDatabase":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- audit plumbing ----------------------------------------------------

    def _journal(
        self,
        alarm_id: str,
        action: str,
        from_status: str,
        to_status: str,
        actor: str = "",
        note: str = "",
    ) -> int:
        """Append one audit row inside the caller's transaction.

        The single chokepoint every lifecycle write funnels through —
        which makes it the one place the provenance plane hooks:
        each audit row doubles as an ``alarm.<action>`` journal event
        (no-op without an installed journal), parented to whatever
        caused it (a detector verdict during a stream seal, nothing
        for an operator move).
        """
        cursor = self._conn.execute(
            "INSERT INTO alarm_audit (alarm_id, ts, actor, action, "
            "from_status, to_status, note) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (alarm_id, time.time(), actor, action, from_status,
             to_status, note),
        )
        if obs_events.enabled():
            obs_events.emit(
                f"alarm.{action}",
                alarm_id=alarm_id,
                from_status=from_status or None,
                to_status=to_status,
                actor=actor or None,
                note=note or None,
            )
        return int(cursor.lastrowid)

    def audit_trail(self, alarm_id: str) -> list[AuditEntry]:
        """Every audit row for one alarm, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT seq, alarm_id, ts, actor, action, from_status, "
                "to_status, note FROM alarm_audit WHERE alarm_id = ? "
                "ORDER BY seq",
                (alarm_id,),
            ).fetchall()
        return [AuditEntry(*row) for row in rows]

    # -- writes ------------------------------------------------------------

    def insert(
        self, alarm: Alarm, dedup_window: float | None = None
    ) -> str:
        """Insert one alarm with its meta-data hints.

        With ``dedup_window`` (seconds), a re-fire of the same anomaly —
        an alarm from the same detector with the same label and router
        whose interval lies within ``dedup_window`` of a stored one — is
        *merged* into the stored alarm instead of inserted: the stored
        interval is widened to cover both, the score keeps the maximum,
        and the meta-data hints are united. This is the suppression a
        streaming deployment needs so a persistent anomaly re-firing
        window after window does not flood the database. Alarms in a
        closed state (resolved/dismissed) never absorb re-fires: a
        fresh alarm is stored (and will be triaged) instead, so new
        evidence on a closed case cannot be silently swallowed.

        Returns the id the alarm is stored under (the existing alarm's
        id when merged). Both the insert and the merge journal one
        audit row in the same transaction.
        """
        with self._lock, self._conn:
            return self._insert_in_tx(alarm, dedup_window)

    def _insert_in_tx(
        self, alarm: Alarm, dedup_window: float | None
    ) -> str:
        """Insert/merge one alarm inside the caller's transaction.

        All statement batching lives here so :meth:`insert` (one
        transaction per alarm) and :meth:`insert_many` (one
        transaction per *batch*) share the exact same semantics.
        """
        if dedup_window is not None:
            if dedup_window < 0:
                raise AlarmDatabaseError(
                    f"dedup_window must be >= 0: {dedup_window!r}"
                )
            merged = self._merge_duplicate(alarm, dedup_window)
            if merged is not None:
                return merged
        try:
            self._conn.execute(
                "INSERT INTO alarms (alarm_id, detector, start, end, "
                "score, label, router) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    alarm.alarm_id,
                    alarm.detector,
                    alarm.start,
                    alarm.end,
                    alarm.score,
                    alarm.label,
                    alarm.router,
                ),
            )
            self._conn.executemany(
                "INSERT INTO alarm_metadata (alarm_id, feature, value, "
                "weight) VALUES (?, ?, ?, ?)",
                [
                    (alarm.alarm_id, m.feature.value, m.value, m.weight)
                    for m in alarm.metadata
                ],
            )
        except sqlite3.IntegrityError as exc:
            raise AlarmDatabaseError(
                f"alarm {alarm.alarm_id!r} already stored"
            ) from exc
        self._journal(
            alarm.alarm_id, "insert", "", AlarmStatus.OPEN,
            actor=alarm.detector,
            note=f"score={alarm.score:g} "
                 f"interval=[{alarm.start:g}, {alarm.end:g})",
        )
        return alarm.alarm_id

    def _merge_duplicate(
        self, alarm: Alarm, dedup_window: float
    ) -> str | None:
        """Merge ``alarm`` into a stored duplicate; ``None`` if none.

        Runs inside the caller's transaction (no commit here). The
        merge journals an audit row — a re-fire is lifecycle-relevant
        evidence (it resets :meth:`auto_close` decay).
        """
        row = self._conn.execute(
            "SELECT alarm_id, start, end, score, status FROM alarms "
            "WHERE detector = ? AND label = ? "
            "AND IFNULL(router, -1) = IFNULL(?, -1) "
            "AND status NOT IN ('resolved', 'dismissed') "
            "AND start <= ? AND end >= ? "
            "ORDER BY start DESC, alarm_id LIMIT 1",
            (
                alarm.detector,
                alarm.label,
                alarm.router,
                alarm.end + dedup_window,
                alarm.start - dedup_window,
            ),
        ).fetchone()
        if row is None:
            return None
        existing_id, start, end, score, status = row
        self._conn.execute(
            "UPDATE alarms SET start = ?, end = ?, score = ? "
            "WHERE alarm_id = ?",
            (
                min(start, alarm.start),
                max(end, alarm.end),
                max(score, alarm.score),
                existing_id,
            ),
        )
        for item in alarm.metadata:
            updated = self._conn.execute(
                "UPDATE alarm_metadata SET weight = MAX(weight, ?) "
                "WHERE alarm_id = ? AND feature = ? AND value = ?",
                (item.weight, existing_id, item.feature.value,
                 item.value),
            ).rowcount
            if updated == 0:
                self._conn.execute(
                    "INSERT INTO alarm_metadata (alarm_id, feature, "
                    "value, weight) VALUES (?, ?, ?, ?)",
                    (existing_id, item.feature.value, item.value,
                     item.weight),
                )
        self._journal(
            existing_id, "merge", status, status,
            actor=alarm.detector,
            note=f"re-fire {alarm.alarm_id} merged; interval now "
                 f"[{min(start, alarm.start):g}, "
                 f"{max(end, alarm.end):g})",
        )
        return existing_id

    def insert_many(
        self, alarms: list[Alarm], dedup_window: float | None = None
    ) -> int:
        """Insert several alarms; returns how many were stored as *new*.

        Alarms merged into existing entries (see :meth:`insert` with
        ``dedup_window``) do not count. The whole batch commits as
        **one transaction** — one fsync instead of one per alarm,
        which is what keeps stream-engine window flushes with many
        alarms cheap on a file-backed database — and is therefore
        all-or-nothing: a duplicate id anywhere in the batch rolls the
        entire batch back before the error propagates.
        """
        stored = 0
        with self._lock, self._conn:
            for alarm in alarms:
                if self._insert_in_tx(alarm, dedup_window) \
                        == alarm.alarm_id:
                    stored += 1
        return stored

    def set_status(
        self, alarm_id: str, status: str, verdict: str = ""
    ) -> None:
        """Advance an alarm's triage state (optionally with a verdict).

        This is the *automated* machine's entry point (the extraction
        pipeline recording ``extracted``/``validated``/``dismissed``);
        it does not enforce :data:`LEGAL_TRANSITIONS` but it journals
        the change like every other write. Operator moves go through
        :meth:`transition`.
        """
        if status not in AlarmStatus.ALL:
            raise AlarmDatabaseError(
                f"unknown status {status!r}; expected one of "
                f"{AlarmStatus.ALL}"
            )
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT status FROM alarms WHERE alarm_id = ?",
                (alarm_id,),
            ).fetchone()
            if row is None:
                raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
            self._conn.execute(
                "UPDATE alarms SET status = ?, verdict = ? "
                "WHERE alarm_id = ?",
                (status, verdict, alarm_id),
            )
            self._journal(
                alarm_id, "set_status", row[0], status,
                actor="system", note=verdict,
            )

    def transition(
        self,
        alarm_id: str,
        action: str,
        actor: str = "",
        note: str = "",
        assignee: str | None = None,
        verdict: str | None = None,
    ) -> str:
        """Apply one operator lifecycle action; returns the new status.

        ``action`` is one of :data:`LIFECYCLE_ACTIONS` (``ack``,
        ``assign``, ``escalate``, ``resolve``, ``dismiss``). The move
        is validated against :data:`LEGAL_TRANSITIONS` from the
        alarm's *current* status — an illegal move raises
        :class:`~repro.errors.AlarmTransitionError` and changes
        nothing. ``assign`` requires ``assignee``. ``verdict``
        (resolve/dismiss) records why the case closed. The status
        update and its audit row commit in one transaction.
        """
        target = LIFECYCLE_ACTIONS.get(action)
        if target is None:
            raise AlarmDatabaseError(
                f"unknown lifecycle action {action!r}; expected one of "
                f"{', '.join(sorted(LIFECYCLE_ACTIONS))}"
            )
        if action == "assign" and not assignee:
            raise AlarmDatabaseError(
                "assign needs an assignee (who owns the case?)"
            )
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT status, assignee, verdict FROM alarms "
                "WHERE alarm_id = ?",
                (alarm_id,),
            ).fetchone()
            if row is None:
                raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
            current, current_assignee, current_verdict = row
            if target not in LEGAL_TRANSITIONS.get(current, ()):
                raise AlarmTransitionError(
                    f"illegal transition {current!r} -> {target!r} "
                    f"for alarm {alarm_id!r} (action {action!r})"
                )
            new_assignee = (
                assignee if assignee is not None else current_assignee
            )
            new_verdict = (
                verdict if verdict is not None else current_verdict
            )
            self._conn.execute(
                "UPDATE alarms SET status = ?, assignee = ?, "
                "verdict = ? WHERE alarm_id = ?",
                (target, new_assignee, new_verdict, alarm_id),
            )
            audit_note = note
            if action == "assign" and assignee and not note:
                audit_note = f"assigned to {assignee}"
            self._journal(
                alarm_id, action, current, target,
                actor=actor, note=audit_note,
            )
        return target

    def auto_close(
        self,
        before: float,
        note: str = "re-fire decay",
        statuses: tuple[str, ...] = (AlarmStatus.OPEN,
                                     AlarmStatus.ACKED),
    ) -> list[str]:
        """Resolve decayed alarms: no re-fire since ``before``.

        An alarm whose interval end (widened by every dedup merge, so
        it tracks the last re-fire) has fallen behind ``before`` and
        which nobody is actively working (status in ``statuses``) is
        resolved with verdict ``decayed``. One transaction covers all
        the status flips and their audit rows. Returns the resolved
        ids, oldest first.
        """
        placeholders = ", ".join("?" for _ in statuses)
        with self._lock, self._conn:
            rows = self._conn.execute(
                f"SELECT alarm_id, status FROM alarms "
                f"WHERE status IN ({placeholders}) AND end < ? "
                f"ORDER BY end, alarm_id",
                (*statuses, before),
            ).fetchall()
            for alarm_id, status in rows:
                self._conn.execute(
                    "UPDATE alarms SET status = ?, verdict = ? "
                    "WHERE alarm_id = ?",
                    (AlarmStatus.RESOLVED, "decayed", alarm_id),
                )
                self._journal(
                    alarm_id, "auto_close", status,
                    AlarmStatus.RESOLVED, actor="auto", note=note,
                )
        return [alarm_id for alarm_id, _ in rows]

    def delete(self, alarm_id: str) -> None:
        """Remove an alarm and its meta-data (the audit trail stays)."""
        with self._lock, self._conn:
            deleted = self._conn.execute(
                "DELETE FROM alarms WHERE alarm_id = ?", (alarm_id,)
            ).rowcount
        if deleted == 0:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")

    # -- reads ---------------------------------------------------------------

    def _row_to_alarm(self, row: sqlite3.Row | tuple) -> Alarm:
        (alarm_id, detector, start, end, score, label, router) = row
        metadata = []
        with closing(
            self._conn.execute(
                "SELECT feature, value, weight FROM alarm_metadata "
                "WHERE alarm_id = ? ORDER BY weight DESC",
                (alarm_id,),
            )
        ) as cursor:
            for feature_text, value, weight in cursor:
                metadata.append(
                    MetadataItem(
                        feature=FlowFeature(feature_text),
                        value=value,
                        weight=weight,
                    )
                )
        return Alarm(
            alarm_id=alarm_id,
            detector=detector,
            start=start,
            end=end,
            score=score,
            label=label,
            metadata=metadata,
            router=router,
        )

    def get(self, alarm_id: str) -> Alarm:
        """Fetch one alarm by id."""
        with self._lock:
            row = self._conn.execute(
                "SELECT alarm_id, detector, start, end, score, label, "
                "router FROM alarms WHERE alarm_id = ?",
                (alarm_id,),
            ).fetchone()
            if row is None:
                raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
            return self._row_to_alarm(row)

    def status_of(self, alarm_id: str) -> tuple[str, str]:
        """``(status, verdict)`` of one alarm."""
        with self._lock:
            row = self._conn.execute(
                "SELECT status, verdict FROM alarms WHERE alarm_id = ?",
                (alarm_id,),
            ).fetchone()
        if row is None:
            raise AlarmDatabaseError(f"unknown alarm {alarm_id!r}")
        return (row[0], row[1])

    def _filter_clauses(
        self,
        status: str | None,
        start: float | None,
        end: float | None,
        detector: str | None = None,
        alarm_id: str | None = None,
    ) -> tuple[list[str], list[object]]:
        clauses: list[str] = []
        params: list[object] = []
        if alarm_id is not None:
            clauses.append("alarm_id = ?")
            params.append(alarm_id)
        if status is not None:
            if status not in AlarmStatus.ALL:
                raise AlarmDatabaseError(f"unknown status {status!r}")
            clauses.append("status = ?")
            params.append(status)
        if detector is not None:
            clauses.append("detector = ?")
            params.append(detector)
        if start is not None:
            clauses.append("end > ?")
            params.append(start)
        if end is not None:
            clauses.append("start < ?")
            params.append(end)
        return clauses, params

    def list_alarms(
        self,
        status: str | None = None,
        start: float | None = None,
        end: float | None = None,
        detector: str | None = None,
    ) -> list[Alarm]:
        """Alarms (optionally by status/detector, overlapping a window)."""
        query = (
            "SELECT alarm_id, detector, start, end, score, label, router "
            "FROM alarms"
        )
        clauses, params = self._filter_clauses(
            status, start, end, detector
        )
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY start, alarm_id"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
            return [self._row_to_alarm(row) for row in rows]

    def rows(
        self,
        status: str | None = None,
        start: float | None = None,
        end: float | None = None,
        detector: str | None = None,
        limit: int | None = None,
        offset: int = 0,
        alarm_id: str | None = None,
    ) -> tuple[list[dict], int]:
        """JSON-ready alarm dicts plus the unpaginated match count.

        Ordering is identical to :meth:`list_alarms` (``start`` then
        ``alarm_id``) — the console's ``/api/alarms`` pages are stable
        slices of exactly that sequence.
        """
        if limit is not None and limit < 1:
            raise AlarmDatabaseError(f"limit must be >= 1: {limit!r}")
        if offset < 0:
            raise AlarmDatabaseError(f"offset must be >= 0: {offset!r}")
        clauses, params = self._filter_clauses(
            status, start, end, detector, alarm_id
        )
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._lock:
            total = int(self._conn.execute(
                "SELECT COUNT(*) FROM alarms" + where, params
            ).fetchone()[0])
            query = (
                "SELECT alarm_id, detector, start, end, score, label, "
                "router, status, verdict, assignee FROM alarms"
                + where + " ORDER BY start, alarm_id"
            )
            page_params = list(params)
            if limit is not None or offset:
                query += " LIMIT ? OFFSET ?"
                page_params += [-1 if limit is None else limit, offset]
            rows = self._conn.execute(query, page_params).fetchall()
            out = []
            for row in rows:
                (alarm_id, detector_name, a_start, a_end, score, label,
                 router, a_status, verdict, assignee) = row
                metadata = [
                    {
                        "feature": feature,
                        "value": value,
                        "rendered": format_feature_value(
                            FlowFeature(feature), value
                        ),
                        "weight": weight,
                    }
                    for feature, value, weight in self._conn.execute(
                        "SELECT feature, value, weight FROM "
                        "alarm_metadata WHERE alarm_id = ? "
                        "ORDER BY weight DESC",
                        (alarm_id,),
                    )
                ]
                out.append({
                    "alarm_id": alarm_id,
                    "detector": detector_name,
                    "start": a_start,
                    "end": a_end,
                    "score": score,
                    "label": label,
                    "router": router,
                    "status": a_status,
                    "verdict": verdict,
                    "assignee": assignee,
                    "metadata": metadata,
                })
        return out, total

    def count(self, status: str | None = None) -> int:
        """Number of alarms (optionally by status)."""
        with self._lock:
            if status is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM alarms"
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM alarms WHERE status = ?",
                    (status,),
                ).fetchone()
        return int(row[0])

    def counts_by_status(self) -> dict[str, int]:
        """``{status: count}`` over every lifecycle state (zeros kept)."""
        counts = dict.fromkeys(AlarmStatus.ALL, 0)
        with self._lock:
            for status, count in self._conn.execute(
                "SELECT status, COUNT(*) FROM alarms GROUP BY status"
            ):
                counts[status] = int(count)
        return counts
