"""The assembled extraction system: Figure 1 of the paper.

Alarm database (sqlite), NfDump-style flow backend, operator console and
the :class:`ExtractionSystem` orchestrator that wires detector → alarm
DB → extraction engine → report.
"""

from repro.system.alarmdb import AlarmDatabase, AlarmStatus
from repro.system.backend import BackendWindows, FlowBackend
from repro.system.config import SystemConfig
from repro.system.console import (
    alarm_queue_view,
    flow_drilldown_view,
    itemset_table_view,
    render_table,
    session_view,
    verdict_view,
)
from repro.system.pipeline import ExtractionSystem, TriageResult

__all__ = [
    "AlarmDatabase",
    "AlarmStatus",
    "BackendWindows",
    "FlowBackend",
    "SystemConfig",
    "alarm_queue_view",
    "flow_drilldown_view",
    "itemset_table_view",
    "render_table",
    "session_view",
    "verdict_view",
    "ExtractionSystem",
    "TriageResult",
]
