"""The assembled anomaly-extraction system (Figure 1).

Wires the pieces of the paper's architecture together::

    detector --> alarm DB --> extraction engine <--> flow backend
                                    |
                                    v
                             operator console

:class:`ExtractionSystem` owns a flow backend, an alarm database and an
extractor. Detectors push alarms in; the operator (or the automated
triage loop of :meth:`process_open_alarms`) pulls reports and verdicts
out. This is the object the examples and the Figure-1 benchmark drive.

This is a supported *compatibility entry point*: the declarative
facade (:mod:`repro.api`) composes it for the ``batch`` and ``triage``
modes and is byte-identical to driving it directly — prefer
``repro.api.session()`` / ``Session.from_config`` for new code (see
ARCHITECTURE.md, "Public API contract").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.detect.base import Alarm, Detector
from repro.errors import ExtractionError, ReproError
from repro.extraction.extractor import AnomalyExtractor, ExtractionReport
from repro.extraction.validate import ValidationVerdict, validate_report
from repro.flows.store import FlowStore
from repro.flows.trace import FlowTrace
from repro.system.alarmdb import AlarmDatabase, AlarmStatus
from repro.system.backend import FlowBackend
from repro.system.config import SystemConfig

if TYPE_CHECKING:
    from repro.parallel.executor import ShardExecutor

__all__ = ["TriageResult", "ExtractionSystem"]


@dataclass
class TriageResult:
    """Everything produced for one alarm by the automated triage loop."""

    alarm: Alarm
    report: ExtractionReport
    verdict: ValidationVerdict


class ExtractionSystem:
    """Backend + alarm DB + extractor, assembled per Figure 1."""

    def __init__(
        self,
        backend: FlowBackend,
        alarmdb: AlarmDatabase | None = None,
        config: SystemConfig | None = None,
        workers: int = 1,
        executor: "ShardExecutor | None" = None,
        ipc: str = "auto",
    ) -> None:
        """``workers > 1`` shards the extraction mining step across
        that many partitions (identical reports, higher throughput —
        see :mod:`repro.parallel`); ``executor`` optionally shares an
        existing worker pool; ``ipc`` picks the transport of a pool
        created here."""
        self.config = config or SystemConfig()
        self.backend = backend
        self.alarmdb = alarmdb or AlarmDatabase()
        self.workers = workers
        self.extractor = AnomalyExtractor(
            self.config.extraction, workers=workers, executor=executor,
            ipc=ipc,
        )

    @classmethod
    def from_trace(
        cls,
        trace: FlowTrace,
        config: SystemConfig | None = None,
        workers: int = 1,
        ipc: str = "auto",
    ) -> "ExtractionSystem":
        """Build a system over an in-memory trace archive."""
        config = config or SystemConfig()
        backend = FlowBackend(
            store=FlowStore.from_trace(trace),
            baseline_bins=config.baseline_bins,
            pad_bins=config.pad_bins,
        )
        return cls(backend, config=config, workers=workers, ipc=ipc)

    @classmethod
    def from_archive(
        cls,
        root_or_reader,
        alarmdb: AlarmDatabase | None = None,
        config: SystemConfig | None = None,
        workers: int = 1,
        ipc: str = "auto",
    ) -> "ExtractionSystem":
        """Build a system over a persistent on-disk flow archive.

        This is the restart-recovery assembly: point it at the archive
        directory (or an :class:`~repro.archive.reader.ArchiveReader`)
        a previous process wrote and the file-backed alarm DB it
        filled, and :meth:`process_open_alarms` resumes triage exactly
        where the dead process stopped — alarm and baseline windows
        are answered by pruned mmap scans over the archived
        partitions.
        """
        config = config or SystemConfig()
        backend = FlowBackend.from_archive(
            root_or_reader,
            baseline_bins=config.baseline_bins,
            pad_bins=config.pad_bins,
        )
        return cls(backend, alarmdb=alarmdb, config=config,
                   workers=workers, ipc=ipc)

    def close(self) -> None:
        """Release extraction worker pools this system owns (idempotent)."""
        self.extractor.close()

    # -- alarm ingestion ------------------------------------------------------

    def ingest(self, alarms: list[Alarm]) -> int:
        """Store detector alarms in the alarm DB. Returns the count."""
        return self.alarmdb.insert_many(alarms)

    def run_detector(
        self, detector: Detector, trace: FlowTrace
    ) -> list[Alarm]:
        """Run a trained detector over ``trace`` and ingest its alarms."""
        alarms = detector.detect(trace)
        self.ingest(alarms)
        return alarms

    # -- extraction ------------------------------------------------------------

    def extract(self, alarm: Alarm | str) -> ExtractionReport:
        """Extract anomalous flows for an alarm (by object or id).

        Queries the backend for the alarm and baseline windows, runs the
        extractor and advances the alarm's triage state.
        """
        if isinstance(alarm, str):
            alarm = self.alarmdb.get(alarm)
        interval_table = self.backend.alarm_table(alarm)
        if not interval_table:
            raise ExtractionError(
                f"no flows stored for alarm {alarm.alarm_id!r} interval "
                f"[{alarm.start}, {alarm.end})"
            )
        baseline_table = self.backend.baseline_table(alarm)
        report = self.extractor.extract(
            alarm, interval_table, baseline_table
        )
        try:
            self.alarmdb.set_status(alarm.alarm_id, AlarmStatus.EXTRACTED)
        except Exception:
            # Alarms extracted ad-hoc (not ingested) stay untracked.
            pass
        return report

    def validate(self, alarm: Alarm | str) -> TriageResult:
        """Extract and validate one alarm, recording the verdict."""
        if isinstance(alarm, str):
            alarm = self.alarmdb.get(alarm)
        report = self.extract(alarm)
        verdict = validate_report(
            report, sample_size=self.config.evidence_sample_size
        )
        try:
            status = (
                AlarmStatus.VALIDATED if verdict.useful
                else AlarmStatus.DISMISSED
            )
            self.alarmdb.set_status(
                alarm.alarm_id, status, verdict.summary()
            )
        except Exception:
            pass
        return TriageResult(alarm=alarm, report=report, verdict=verdict)

    def process_open_alarms(
        self, skip_errors: bool = False
    ) -> list[TriageResult]:
        """Triage every open alarm in the DB, oldest first.

        With ``skip_errors`` an alarm whose extraction fails (e.g. its
        flows are not archived yet, or already expired) is left open and
        skipped instead of aborting the loop — the behaviour a streaming
        deployment wants, where triage runs continuously against a
        rotating archive and simply retries on the next pass.
        """
        results = []
        for alarm in self.alarmdb.list_alarms(status=AlarmStatus.OPEN):
            try:
                results.append(self.validate(alarm))
            except ReproError:
                if not skip_errors:
                    raise
        return results
