"""System-level configuration for the assembled extraction system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.extraction.extractor import ExtractionConfig

__all__ = ["SystemConfig"]


@dataclass(frozen=True)
class SystemConfig:
    """Deployment knobs of the Figure-1 system.

    ``baseline_bins`` is how many pre-alarm bins feed the popular-value
    filter; ``pad_bins`` extends the extraction window symmetrically
    around the alarm (for detectors with coarse time resolution);
    ``anonymize`` renders report IPs in the paper's ``X.191.64.165``
    style — the default for anything leaving the NOC.
    """

    extraction: ExtractionConfig = field(default_factory=ExtractionConfig)
    baseline_bins: int = 3
    pad_bins: int = 0
    anonymize: bool = False
    evidence_sample_size: int = 5

    def __post_init__(self) -> None:
        if self.baseline_bins < 0:
            raise ConfigurationError("baseline_bins must be >= 0")
        if self.pad_bins < 0:
            raise ConfigurationError("pad_bins must be >= 0")
        if self.evidence_sample_size < 1:
            raise ConfigurationError("evidence_sample_size must be >= 1")
